package expr

import (
	"github.com/tasterdb/taster/internal/storage"
)

// This file compiles the column-vs-constant subset of boolean expressions
// into selection-vector kernels: typed tight loops that refine a []int32 of
// candidate physical row indices in place of the tree-walking interpreter.
// The interpreter allocates one boolean storage.Vector per Cmp node and one
// per connective, touches every row once per node, and re-dispatches on type
// per row; the kernels hoist the type and operator dispatch out of the row
// loop, allocate nothing per batch (intermediate selections come from a
// reusable Scratch), and fuse conjunctions so later conjuncts only look at
// rows that survived earlier ones.
//
// Semantics contract: a compiled Filter selects exactly the rows for which
// Eval's boolean vector is true, bit-for-bit, including the IEEE edge cases —
// NaN compares false under every operator except <>, Value.Equal's strict
// same-type equality governs IN, and int64-vs-int64 comparisons stay in
// integer domain (never coerced through float64, which would fold values
// above 2^53). Eval remains both the fallback for expression shapes outside
// this subset (column-vs-column, arithmetic, boolean columns under ordered
// operators) and the differential oracle the kernel tests compare against.
//
// Selection-vector convention, shared with the exec package: a selection is
// an ascending list of physical row indices; nil means "every row of the
// batch" (the dense case, which gets its own loop bodies so the first
// conjunct streams the raw column without indirection). Every node maps an
// ascending input selection to an ascending subset — And refines
// sequentially, Or union-merges, Not complements against its input — so the
// invariant holds by construction.

// Filter is a compiled predicate program over a fixed input schema.
type Filter struct{ root selNode }

// CompileFilter compiles a boolean expression into selection kernels.
// ok=false means the expression is outside the compilable subset (or
// references columns missing from the schema) and the caller must fall back
// to Eval.
func CompileFilter(e Expr, s storage.Schema) (*Filter, bool) {
	n, ok := compileNode(e, s)
	if !ok {
		return nil, false
	}
	return &Filter{root: n}, true
}

// KernelCompilable reports whether CompileFilter succeeds for e over s. It is
// a static property of the expression shape — the planner's cost model uses
// it to price a filter as vectorized or interpreted, and it deliberately
// ignores the runtime kernel-disable switch so that switch can never change
// plan choice (the differential harness runs kernels on and off against the
// same plans).
func KernelCompilable(e Expr, s storage.Schema) bool {
	_, ok := CompileFilter(e, s)
	return ok
}

// Refine runs the program over one batch: in lists the candidate physical
// rows (ascending; nil = all rows), survivors are appended to out and
// returned. sc lends intermediate buffers; it may be shared across calls but
// not across goroutines.
func (f *Filter) Refine(b *storage.Batch, in, out []int32, sc *Scratch) []int32 {
	return f.root.refine(b, in, out, sc)
}

// Scratch is a free list of intermediate selection buffers for Refine. One
// Scratch per operator instance: buffers grow to batch size once and are
// reused for every subsequent batch.
type Scratch struct{ free [][]int32 }

func (s *Scratch) get(n int) []int32 {
	if k := len(s.free) - 1; k >= 0 {
		b := s.free[k]
		s.free = s.free[:k]
		return b[:0]
	}
	return make([]int32, 0, n)
}

func (s *Scratch) put(b []int32) { s.free = append(s.free, b) }

// rowsIn is the candidate count of a (batch, selection) pair.
func rowsIn(b *storage.Batch, in []int32) int {
	if in == nil {
		return b.Len()
	}
	return len(in)
}

// selNode is one node of a compiled program. refine appends the surviving
// subset of in (ascending) onto out.
type selNode interface {
	refine(b *storage.Batch, in, out []int32, sc *Scratch) []int32
}

// ---- compilation ----

func compileNode(e Expr, s storage.Schema) (selNode, bool) {
	switch t := e.(type) {
	case *Logic:
		l, ok := compileNode(t.L, s)
		if !ok {
			return nil, false
		}
		r, ok := compileNode(t.R, s)
		if !ok {
			return nil, false
		}
		if t.Op == And {
			return &andNode{kids: flattenAnd(l, r)}, true
		}
		return &orNode{kids: flattenOr(l, r)}, true
	case *Not:
		k, ok := compileNode(t.E, s)
		if !ok {
			return nil, false
		}
		return &notNode{kid: k}, true
	case *Cmp:
		return compileCmp(t, s)
	case *In:
		return compileIn(t, s)
	}
	return nil, false
}

// flattenAnd/flattenOr merge nested same-connective nodes into one n-ary
// node, preserving left-to-right order. For And that is what makes conjunct
// fusion pay: one survivor list threads through all conjuncts instead of
// pairwise intermediate merges.
func flattenAnd(l, r selNode) []selNode {
	var kids []selNode
	if a, ok := l.(*andNode); ok {
		kids = append(kids, a.kids...)
	} else {
		kids = append(kids, l)
	}
	if a, ok := r.(*andNode); ok {
		kids = append(kids, a.kids...)
	} else {
		kids = append(kids, r)
	}
	return kids
}

func flattenOr(l, r selNode) []selNode {
	var kids []selNode
	if o, ok := l.(*orNode); ok {
		kids = append(kids, o.kids...)
	} else {
		kids = append(kids, l)
	}
	if o, ok := r.(*orNode); ok {
		kids = append(kids, o.kids...)
	} else {
		kids = append(kids, r)
	}
	return kids
}

// mirror returns the operator with operands swapped: c op x ⇔ x mirror(op) c.
func (o CmpOp) mirror() CmpOp { return [...]CmpOp{EQ, NE, GT, GE, LT, LE}[o] }

// splitColConst matches col-op-const and const-op-col (operator mirrored).
func splitColConst(e *Cmp) (*Col, storage.Value, CmpOp, bool) {
	if c, ok := e.L.(*Col); ok {
		if k, ok := e.R.(*Const); ok {
			return c, k.Val, e.Op, true
		}
		return nil, storage.Value{}, 0, false
	}
	if k, ok := e.L.(*Const); ok {
		if c, ok := e.R.(*Col); ok {
			return c, k.Val, e.Op.mirror(), true
		}
	}
	return nil, storage.Value{}, 0, false
}

func compileCmp(e *Cmp, s storage.Schema) (selNode, bool) {
	col, c, op, ok := splitColConst(e)
	if !ok {
		return nil, false
	}
	ci := s.Index(col.Name)
	if ci < 0 {
		return nil, false
	}
	n := &cmpNode{col: ci, op: op}
	// The kind dispatch mirrors Eval's: int64-vs-int64 compares in integer
	// domain, any numeric mix compares as float64 (Vector.Float coercion),
	// string-vs-string lexicographic. Boolean columns compile to a
	// precomputed truth pair — the comparison result depends only on the
	// column bit, so even the ordered operators (via Eval's b2i path) reduce
	// to a table lookup.
	switch {
	case s[ci].Typ == storage.Int64 && c.Typ == storage.Int64:
		n.kind, n.i64 = cmpI64, c.I
	case s[ci].Typ == storage.Int64 && c.Typ == storage.Float64:
		n.kind, n.f64 = cmpI64F64, c.F
	case s[ci].Typ == storage.Float64 && c.Typ == storage.Int64:
		n.kind, n.f64 = cmpF64, float64(c.I)
	case s[ci].Typ == storage.Float64 && c.Typ == storage.Float64:
		n.kind, n.f64 = cmpF64, c.F
	case s[ci].Typ == storage.String && c.Typ == storage.String:
		n.kind, n.str = cmpStr, c.S
	case s[ci].Typ == storage.Bool && c.Typ == storage.Bool:
		n.kind = cmpBool
		n.rf = cmpBoolResult(false, c.B, op)
		n.rt = cmpBoolResult(true, c.B, op)
	default:
		return nil, false
	}
	return n, true
}

func cmpBoolResult(x, c bool, op CmpOp) bool {
	switch op {
	case EQ:
		return x == c
	case NE:
		return x != c
	}
	return cmpOrd(b2i(x), b2i(c), op)
}

func compileIn(e *In, s storage.Schema) (selNode, bool) {
	col, ok := e.E.(*Col)
	if !ok {
		return nil, false
	}
	ci := s.Index(col.Name)
	if ci < 0 {
		return nil, false
	}
	n := &inNode{col: ci, typ: s[ci].Typ}
	// Value.Equal is strict same-type equality, so values of any other type
	// in the list can never match and are dropped at compile time.
	switch n.typ {
	case storage.Int64:
		for _, v := range e.Vals {
			if v.Typ == storage.Int64 {
				n.i64s = append(n.i64s, v.I)
			}
		}
	case storage.Float64:
		for _, v := range e.Vals {
			if v.Typ == storage.Float64 {
				n.f64s = append(n.f64s, v.F)
			}
		}
	case storage.String:
		for _, v := range e.Vals {
			if v.Typ == storage.String {
				n.strs = append(n.strs, v.S)
			}
		}
	case storage.Bool:
		for _, v := range e.Vals {
			if v.Typ == storage.Bool {
				if v.B {
					n.rt = true
				} else {
					n.rf = true
				}
			}
		}
	default:
		return nil, false
	}
	return n, true
}

// ---- leaf kernels ----

type cmpKind uint8

const (
	cmpI64    cmpKind = iota // int64 column vs int64 constant, integer compare
	cmpF64                   // float64 column vs numeric constant, float compare
	cmpI64F64                // int64 column vs float constant, coerced to float
	cmpStr                   // string column vs string constant
	cmpBool                  // bool column: precomputed per-bit truth pair
)

type cmpNode struct {
	col  int
	op   CmpOp
	kind cmpKind
	i64  int64
	f64  float64
	str  string
	// rf/rt: comparison result when the bool column holds false/true.
	rf, rt bool
}

func (n *cmpNode) refine(b *storage.Batch, in, out []int32, _ *Scratch) []int32 {
	v := b.Vecs[n.col]
	switch n.kind {
	case cmpI64:
		return selOrd(v.I64, n.i64, n.op, in, out)
	case cmpF64:
		return selOrd(v.F64, n.f64, n.op, in, out)
	case cmpI64F64:
		return selI64AsF64(v.I64, n.f64, n.op, in, out)
	case cmpStr:
		return selOrd(v.Str, n.str, n.op, in, out)
	default:
		return selBoolPair(v.B, n.rf, n.rt, in, out)
	}
}

// selOrd appends the indices where col[i] op c onto out. The operator switch
// sits outside the row loop, and the dense (in == nil) case streams the raw
// column without index indirection. Go's native comparison operators give the
// IEEE semantics the contract requires (NaN false except !=).
func selOrd[T int64 | float64 | string](col []T, c T, op CmpOp, in, out []int32) []int32 {
	if in == nil {
		switch op {
		case EQ:
			for i, x := range col {
				if x == c {
					out = append(out, int32(i))
				}
			}
		case NE:
			for i, x := range col {
				if x != c {
					out = append(out, int32(i))
				}
			}
		case LT:
			for i, x := range col {
				if x < c {
					out = append(out, int32(i))
				}
			}
		case LE:
			for i, x := range col {
				if x <= c {
					out = append(out, int32(i))
				}
			}
		case GT:
			for i, x := range col {
				if x > c {
					out = append(out, int32(i))
				}
			}
		case GE:
			for i, x := range col {
				if x >= c {
					out = append(out, int32(i))
				}
			}
		}
		return out
	}
	switch op {
	case EQ:
		for _, i := range in {
			if col[i] == c {
				out = append(out, i)
			}
		}
	case NE:
		for _, i := range in {
			if col[i] != c {
				out = append(out, i)
			}
		}
	case LT:
		for _, i := range in {
			if col[i] < c {
				out = append(out, i)
			}
		}
	case LE:
		for _, i := range in {
			if col[i] <= c {
				out = append(out, i)
			}
		}
	case GT:
		for _, i := range in {
			if col[i] > c {
				out = append(out, i)
			}
		}
	case GE:
		for _, i := range in {
			if col[i] >= c {
				out = append(out, i)
			}
		}
	}
	return out
}

// selI64AsF64 is selOrd for the mixed-numeric case: an int64 column compared
// against a float constant goes through float64 coercion per row, exactly as
// Eval's Vector.Float path does.
func selI64AsF64(col []int64, c float64, op CmpOp, in, out []int32) []int32 {
	if in == nil {
		switch op {
		case EQ:
			for i, x := range col {
				if float64(x) == c {
					out = append(out, int32(i))
				}
			}
		case NE:
			for i, x := range col {
				if float64(x) != c {
					out = append(out, int32(i))
				}
			}
		case LT:
			for i, x := range col {
				if float64(x) < c {
					out = append(out, int32(i))
				}
			}
		case LE:
			for i, x := range col {
				if float64(x) <= c {
					out = append(out, int32(i))
				}
			}
		case GT:
			for i, x := range col {
				if float64(x) > c {
					out = append(out, int32(i))
				}
			}
		case GE:
			for i, x := range col {
				if float64(x) >= c {
					out = append(out, int32(i))
				}
			}
		}
		return out
	}
	switch op {
	case EQ:
		for _, i := range in {
			if float64(col[i]) == c {
				out = append(out, i)
			}
		}
	case NE:
		for _, i := range in {
			if float64(col[i]) != c {
				out = append(out, i)
			}
		}
	case LT:
		for _, i := range in {
			if float64(col[i]) < c {
				out = append(out, i)
			}
		}
	case LE:
		for _, i := range in {
			if float64(col[i]) <= c {
				out = append(out, i)
			}
		}
	case GT:
		for _, i := range in {
			if float64(col[i]) > c {
				out = append(out, i)
			}
		}
	case GE:
		for _, i := range in {
			if float64(col[i]) >= c {
				out = append(out, i)
			}
		}
	}
	return out
}

// selBoolPair selects by the precomputed truth pair: rf/rt is the predicate
// result for a false/true column bit.
func selBoolPair(col []bool, rf, rt bool, in, out []int32) []int32 {
	if in == nil {
		for i, x := range col {
			if (x && rt) || (!x && rf) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range in {
		x := col[i]
		if (x && rt) || (!x && rf) {
			out = append(out, i)
		}
	}
	return out
}

type inNode struct {
	col  int
	typ  storage.Type
	i64s []int64
	f64s []float64
	strs []string
	// Bool columns: membership result for a false/true column bit.
	rf, rt bool
}

func (n *inNode) refine(b *storage.Batch, in, out []int32, _ *Scratch) []int32 {
	v := b.Vecs[n.col]
	switch n.typ {
	case storage.Int64:
		return selIn(v.I64, n.i64s, in, out)
	case storage.Float64:
		return selIn(v.F64, n.f64s, in, out)
	case storage.String:
		return selIn(v.Str, n.strs, in, out)
	default:
		return selBoolPair(v.B, n.rf, n.rt, in, out)
	}
}

// selIn appends the indices whose column value equals any list value. Linear
// scan: IN lists are small literal sets, and Go == over the element type is
// exactly Value.Equal's same-type semantics (a NaN column value matches
// nothing, NaN list values match nothing).
func selIn[T comparable](col []T, vals []T, in, out []int32) []int32 {
	if in == nil {
		for i, x := range col {
			for _, c := range vals {
				if x == c {
					out = append(out, int32(i))
					break
				}
			}
		}
		return out
	}
	for _, i := range in {
		x := col[i]
		for _, c := range vals {
			if x == c {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// ---- connectives ----

// andNode refines sequentially: each conjunct only sees the survivors of the
// previous ones (fusion). An empty intermediate selection makes the remaining
// conjuncts free — their loops run over zero candidates.
type andNode struct{ kids []selNode }

func (n *andNode) refine(b *storage.Batch, in, out []int32, sc *Scratch) []int32 {
	cur := in
	var owned []int32
	last := len(n.kids) - 1
	for k := 0; k < last; k++ {
		nxt := n.kids[k].refine(b, cur, sc.get(rowsIn(b, cur)), sc)
		if owned != nil {
			sc.put(owned)
		}
		owned, cur = nxt, nxt
	}
	out = n.kids[last].refine(b, cur, out, sc)
	if owned != nil {
		sc.put(owned)
	}
	return out
}

// orNode evaluates every disjunct against the same input selection and
// union-merges the ascending results (dedup on equal indices).
type orNode struct{ kids []selNode }

func (n *orNode) refine(b *storage.Batch, in, out []int32, sc *Scratch) []int32 {
	hint := rowsIn(b, in)
	acc := n.kids[0].refine(b, in, sc.get(hint), sc)
	for _, k := range n.kids[1:] {
		t := k.refine(b, in, sc.get(hint), sc)
		m := mergeUnion(sc.get(len(acc)+len(t)), acc, t)
		sc.put(acc)
		sc.put(t)
		acc = m
	}
	out = append(out, acc...)
	sc.put(acc)
	return out
}

// mergeUnion appends the ascending union of a and b onto dst.
func mergeUnion(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// notNode complements the child's selection against its own input. This is
// the ordered set complement, NOT a negated comparison: NOT(f < 5) must
// select NaN rows (the child rejected them), which f >= 5 would not.
type notNode struct{ kid selNode }

func (n *notNode) refine(b *storage.Batch, in, out []int32, sc *Scratch) []int32 {
	t := n.kid.refine(b, in, sc.get(rowsIn(b, in)), sc)
	j := 0
	if in == nil {
		rows := b.Len()
		for i := 0; i < rows; i++ {
			if j < len(t) && t[j] == int32(i) {
				j++
				continue
			}
			out = append(out, int32(i))
		}
	} else {
		for _, i := range in {
			if j < len(t) && t[j] == i {
				j++
				continue
			}
			out = append(out, i)
		}
	}
	sc.put(t)
	return out
}
