package expr

import (
	"math"

	"github.com/tasterdb/taster/internal/storage"
)

// Zone-map pruning. ZonePrunes decides whether a scan may skip a partition
// entirely given the partition's per-column [min, max] bounds. The check is
// conservative by construction: only top-level AND-ed conjuncts of the
// recognizable col-op-const / col-IN shapes are consulted, and any conjunct,
// column or value pair the analysis does not fully understand contributes
// nothing — it can only fail to prune, never prune wrongly. Soundness is
// held by a property test over random predicates and partitions.

// ZonePrunes reports whether pred provably rejects every row whose column
// values lie within the zone's bounds — i.e. whether a scan can skip the
// partition the zone summarizes without changing any query result. An empty
// partition is always prunable; a nil predicate or nil zone never is.
func ZonePrunes(pred Expr, sch storage.Schema, zone *storage.ZoneMap) bool {
	if zone == nil {
		return false
	}
	if zone.Rows == 0 {
		return true
	}
	if pred == nil {
		return false
	}
	for _, cj := range Conjuncts(pred) {
		sc, ok := asSimple(cj)
		if !ok {
			continue
		}
		i := sch.Index(sc.col)
		if i < 0 || i >= len(zone.Min) {
			continue
		}
		hasNaN := i < len(zone.HasNaN) && zone.HasNaN[i]
		if conjunctExcludes(sc, zone.Min[i], zone.Max[i], hasNaN) {
			return true
		}
	}
	return false
}

// conjunctExcludes reports whether the conjunct is false for every row the
// zone admits — a single excluding conjunct of a conjunction prunes the
// whole partition. hasNaN widens the admitted set beyond [mn, mx] for float
// columns: a NaN row compares false under every ordered operator and under
// == (so EQ/IN/range exclusion stays sound), but true under !=, which makes
// NE exclusion unsound the moment one NaN row exists.
func conjunctExcludes(sc simpleConjunct, mn, mx storage.Value, hasNaN bool) bool {
	if sc.isIn {
		if len(sc.in) == 0 {
			return true
		}
		for _, v := range sc.in {
			if !valueOutside(v, mn, mx) {
				return false
			}
		}
		return true
	}
	switch sc.op {
	case EQ:
		return valueOutside(sc.val, mn, mx)
	case NE:
		// Excludes only when every row holds exactly val: mn == val == mx,
		// and no NaN row hides outside the bounds (NaN != val selects it).
		if hasNaN {
			return false
		}
		cl, ok1 := zoneCmp(mn, sc.val)
		ch, ok2 := zoneCmp(mx, sc.val)
		return ok1 && ok2 && cl == 0 && ch == 0
	case LT: // col < val fails everywhere iff mn >= val
		c, ok := zoneCmp(mn, sc.val)
		return ok && c >= 0
	case LE: // col <= val fails everywhere iff mn > val
		c, ok := zoneCmp(mn, sc.val)
		return ok && c > 0
	case GT: // col > val fails everywhere iff mx <= val
		c, ok := zoneCmp(mx, sc.val)
		return ok && c <= 0
	case GE: // col >= val fails everywhere iff mx < val
		c, ok := zoneCmp(mx, sc.val)
		return ok && c < 0
	}
	return false
}

// valueOutside reports that v provably lies outside [mn, mx].
func valueOutside(v, mn, mx storage.Value) bool {
	if c, ok := zoneCmp(v, mn); ok && c < 0 {
		return true
	}
	if c, ok := zoneCmp(v, mx); ok && c > 0 {
		return true
	}
	return false
}

// maxExactInt bounds the int64 range float64 represents exactly (2^53);
// mixed int/float comparisons beyond it are declared incomparable rather
// than risking an off-by-one-ulp unsound prune.
const maxExactInt = int64(1) << 53

// zoneCmp is a three-way comparison of two values for pruning purposes.
// ok is false when the pair cannot be compared soundly: mismatched
// non-numeric types, NaN, or a mixed int/float pair outside float64's exact
// integer range.
func zoneCmp(a, b storage.Value) (c int, ok bool) {
	switch {
	case a.Typ == storage.Int64 && b.Typ == storage.Int64:
		return cmpOrdered(a.I, b.I), true
	case a.Typ == storage.Float64 && b.Typ == storage.Float64:
		if math.IsNaN(a.F) || math.IsNaN(b.F) {
			return 0, false
		}
		return cmpOrdered(a.F, b.F), true
	case a.Typ == storage.Int64 && b.Typ == storage.Float64:
		return cmpIntFloat(a.I, b.F)
	case a.Typ == storage.Float64 && b.Typ == storage.Int64:
		c, ok := cmpIntFloat(b.I, a.F)
		return -c, ok
	case a.Typ == storage.String && b.Typ == storage.String:
		return cmpOrdered(a.S, b.S), true
	case a.Typ == storage.Bool && b.Typ == storage.Bool:
		return cmpOrdered(boolInt(a.B), boolInt(b.B)), true
	}
	return 0, false
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpIntFloat(i int64, f float64) (int, bool) {
	if math.IsNaN(f) {
		return 0, false
	}
	if i > maxExactInt || i < -maxExactInt {
		return 0, false
	}
	return cmpOrdered(float64(i), f), true
}
