// Package expr provides columnar expression evaluation for the query engine,
// plus the predicate analysis (conjunct extraction, implication) that the
// planner uses to match query subplans against materialized synopses
// (paper §IV-A: a synopsis matches when its filtering predicates are weaker
// than or equal to the query's).
package expr

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tasterdb/taster/internal/storage"
)

// Expr is a scalar expression evaluated over a batch, producing one vector.
type Expr interface {
	// Type returns the result type under the given input schema.
	Type(s storage.Schema) (storage.Type, error)
	// Eval evaluates the expression over every row of the batch.
	Eval(b *storage.Batch) (*storage.Vector, error)
	// String returns a canonical rendering; identical expressions render
	// identically, which plan signatures rely on.
	String() string
	// Columns appends the referenced column names to dst.
	Columns(dst []string) []string
}

// Col references a column by (possibly qualified) name.
type Col struct{ Name string }

// Type implements Expr.
func (c *Col) Type(s storage.Schema) (storage.Type, error) {
	i := s.Index(c.Name)
	if i < 0 {
		return 0, fmt.Errorf("expr: unknown column %q in schema %v", c.Name, s.Names())
	}
	return s[i].Typ, nil
}

// Eval implements Expr.
func (c *Col) Eval(b *storage.Batch) (*storage.Vector, error) {
	i := b.Schema.Index(c.Name)
	if i < 0 {
		return nil, fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return b.Vecs[i], nil
}

// String implements Expr.
func (c *Col) String() string { return c.Name }

// Columns implements Expr.
func (c *Col) Columns(dst []string) []string { return append(dst, c.Name) }

// Const is a literal value.
type Const struct{ Val storage.Value }

// Int returns an int64 literal.
func Int(v int64) *Const { return &Const{Val: storage.IntValue(v)} }

// Float returns a float64 literal.
func Float(v float64) *Const { return &Const{Val: storage.FloatValue(v)} }

// Str returns a string literal.
func Str(v string) *Const { return &Const{Val: storage.StringValue(v)} }

// Type implements Expr.
func (c *Const) Type(storage.Schema) (storage.Type, error) { return c.Val.Typ, nil }

// Eval implements Expr.
func (c *Const) Eval(b *storage.Batch) (*storage.Vector, error) {
	n := b.Len()
	v := storage.NewVector(c.Val.Typ, n)
	for i := 0; i < n; i++ {
		v.Append(c.Val)
	}
	return v, nil
}

// String implements Expr.
func (c *Const) String() string {
	if c.Val.Typ == storage.String {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

// Columns implements Expr.
func (c *Const) Columns(dst []string) []string { return dst }

// BinOp is an arithmetic operator.
type BinOp uint8

// Arithmetic operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
)

func (o BinOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Bin is a binary arithmetic expression over numeric operands.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Type implements Expr. Int op Int stays Int (except Div); anything with a
// Float becomes Float.
func (e *Bin) Type(s storage.Schema) (storage.Type, error) {
	lt, err := e.L.Type(s)
	if err != nil {
		return 0, err
	}
	rt, err := e.R.Type(s)
	if err != nil {
		return 0, err
	}
	if !lt.Numeric() || !rt.Numeric() {
		return 0, fmt.Errorf("expr: arithmetic on non-numeric types %s, %s", lt, rt)
	}
	if lt == storage.Int64 && rt == storage.Int64 && e.Op != Div {
		return storage.Int64, nil
	}
	return storage.Float64, nil
}

// Eval implements Expr.
func (e *Bin) Eval(b *storage.Batch) (*storage.Vector, error) {
	lv, err := e.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := e.R.Eval(b)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	if lv.Typ == storage.Int64 && rv.Typ == storage.Int64 && e.Op != Div {
		out := storage.NewVector(storage.Int64, n)
		for i := 0; i < n; i++ {
			l, r := lv.I64[i], rv.I64[i]
			var v int64
			switch e.Op {
			case Add:
				v = l + r
			case Sub:
				v = l - r
			case Mul:
				v = l * r
			}
			out.I64 = append(out.I64, v)
		}
		return out, nil
	}
	out := storage.NewVector(storage.Float64, n)
	for i := 0; i < n; i++ {
		l, r := lv.Float(i), rv.Float(i)
		var v float64
		switch e.Op {
		case Add:
			v = l + r
		case Sub:
			v = l - r
		case Mul:
			v = l * r
		case Div:
			if r != 0 {
				v = l / r
			}
		}
		out.F64 = append(out.F64, v)
	}
	return out, nil
}

// String implements Expr.
func (e *Bin) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// Columns implements Expr.
func (e *Bin) Columns(dst []string) []string { return e.R.Columns(e.L.Columns(dst)) }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[o] }

// negate returns the complementary operator (NOT a op b).
func (o CmpOp) negate() CmpOp {
	return [...]CmpOp{NE, EQ, GE, GT, LE, LT}[o]
}

// Cmp compares two expressions, producing a Bool vector.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Type implements Expr.
func (e *Cmp) Type(s storage.Schema) (storage.Type, error) {
	lt, err := e.L.Type(s)
	if err != nil {
		return 0, err
	}
	rt, err := e.R.Type(s)
	if err != nil {
		return 0, err
	}
	if lt.Numeric() != rt.Numeric() && lt != rt {
		return 0, fmt.Errorf("expr: comparing %s with %s", lt, rt)
	}
	return storage.Bool, nil
}

// Eval implements Expr.
func (e *Cmp) Eval(b *storage.Batch) (*storage.Vector, error) {
	lv, err := e.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := e.R.Eval(b)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	out := storage.NewVector(storage.Bool, n)
	switch {
	case lv.Typ == storage.Int64 && rv.Typ == storage.Int64:
		for i := 0; i < n; i++ {
			out.B = append(out.B, cmpOrd(lv.I64[i], rv.I64[i], e.Op))
		}
	case lv.Typ == storage.String && rv.Typ == storage.String:
		for i := 0; i < n; i++ {
			out.B = append(out.B, cmpOrd(lv.Str[i], rv.Str[i], e.Op))
		}
	case lv.Typ == storage.Bool && rv.Typ == storage.Bool:
		for i := 0; i < n; i++ {
			l, r := lv.B[i], rv.B[i]
			var v bool
			switch e.Op {
			case EQ:
				v = l == r
			case NE:
				v = l != r
			default:
				v = cmpOrd(b2i(l), b2i(r), e.Op)
			}
			out.B = append(out.B, v)
		}
	default: // mixed numeric
		for i := 0; i < n; i++ {
			out.B = append(out.B, cmpOrd(lv.Float(i), rv.Float(i), e.Op))
		}
	}
	return out, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpOrd[T int64 | float64 | string](l, r T, op CmpOp) bool {
	switch op {
	case EQ:
		return l == r
	case NE:
		return l != r
	case LT:
		return l < r
	case LE:
		return l <= r
	case GT:
		return l > r
	case GE:
		return l >= r
	}
	return false
}

// String implements Expr.
func (e *Cmp) String() string {
	return e.L.String() + " " + e.Op.String() + " " + e.R.String()
}

// Columns implements Expr.
func (e *Cmp) Columns(dst []string) []string { return e.R.Columns(e.L.Columns(dst)) }

// LogicOp is a boolean connective.
type LogicOp uint8

// Boolean connectives.
const (
	And LogicOp = iota
	Or
)

func (o LogicOp) String() string { return [...]string{"AND", "OR"}[o] }

// Logic combines two boolean expressions.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Type implements Expr.
func (e *Logic) Type(s storage.Schema) (storage.Type, error) {
	for _, sub := range []Expr{e.L, e.R} {
		t, err := sub.Type(s)
		if err != nil {
			return 0, err
		}
		if t != storage.Bool {
			return 0, fmt.Errorf("expr: %s operand is %s, want BOOLEAN", e.Op, t)
		}
	}
	return storage.Bool, nil
}

// Eval implements Expr.
func (e *Logic) Eval(b *storage.Batch) (*storage.Vector, error) {
	lv, err := e.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := e.R.Eval(b)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	out := storage.NewVector(storage.Bool, n)
	for i := 0; i < n; i++ {
		if e.Op == And {
			out.B = append(out.B, lv.B[i] && rv.B[i])
		} else {
			out.B = append(out.B, lv.B[i] || rv.B[i])
		}
	}
	return out, nil
}

// String implements Expr.
func (e *Logic) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// Columns implements Expr.
func (e *Logic) Columns(dst []string) []string { return e.R.Columns(e.L.Columns(dst)) }

// Not negates a boolean expression.
type Not struct{ E Expr }

// Type implements Expr.
func (e *Not) Type(s storage.Schema) (storage.Type, error) {
	t, err := e.E.Type(s)
	if err != nil {
		return 0, err
	}
	if t != storage.Bool {
		return 0, fmt.Errorf("expr: NOT operand is %s, want BOOLEAN", t)
	}
	return storage.Bool, nil
}

// Eval implements Expr.
func (e *Not) Eval(b *storage.Batch) (*storage.Vector, error) {
	v, err := e.E.Eval(b)
	if err != nil {
		return nil, err
	}
	out := storage.NewVector(storage.Bool, v.Len())
	for _, x := range v.B {
		out.B = append(out.B, !x)
	}
	return out, nil
}

// String implements Expr.
func (e *Not) String() string { return "NOT (" + e.E.String() + ")" }

// Columns implements Expr.
func (e *Not) Columns(dst []string) []string { return e.E.Columns(dst) }

// In tests membership of an expression in a literal list.
type In struct {
	E    Expr
	Vals []storage.Value
}

// Type implements Expr.
func (e *In) Type(s storage.Schema) (storage.Type, error) {
	if _, err := e.E.Type(s); err != nil {
		return 0, err
	}
	return storage.Bool, nil
}

// Eval implements Expr.
func (e *In) Eval(b *storage.Batch) (*storage.Vector, error) {
	v, err := e.E.Eval(b)
	if err != nil {
		return nil, err
	}
	n := v.Len()
	out := storage.NewVector(storage.Bool, n)
	for i := 0; i < n; i++ {
		x := v.Get(i)
		hit := false
		for _, c := range e.Vals {
			if x.Equal(c) {
				hit = true
				break
			}
		}
		out.B = append(out.B, hit)
	}
	return out, nil
}

// String implements Expr.
func (e *In) String() string {
	parts := make([]string, len(e.Vals))
	for i, v := range e.Vals {
		if v.Typ == storage.String {
			parts[i] = "'" + v.S + "'"
		} else {
			parts[i] = v.String()
		}
	}
	sort.Strings(parts)
	return e.E.String() + " IN (" + strings.Join(parts, ", ") + ")"
}

// Columns implements Expr.
func (e *In) Columns(dst []string) []string { return e.E.Columns(dst) }

// EvalBool evaluates a boolean expression and returns the selection vector of
// matching row indices — the filter operator's hot path.
func EvalBool(e Expr, b *storage.Batch) ([]int, error) {
	return EvalBoolInto(e, b, nil)
}

// EvalBoolInto is EvalBool appending into a caller-provided scratch slice, so
// a filter operator can reuse one selection buffer across batches. Callers
// pass scratch[:0]; the result aliases scratch when capacity suffices.
func EvalBoolInto(e Expr, b *storage.Batch, scratch []int) ([]int, error) {
	v, err := e.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Typ != storage.Bool {
		return nil, fmt.Errorf("expr: filter expression %s is %s, want BOOLEAN", e, v.Typ)
	}
	idx := scratch
	if idx == nil {
		idx = make([]int, 0, len(v.B))
	}
	for i, ok := range v.B {
		if ok {
			idx = append(idx, i)
		}
	}
	return idx, nil
}
