package expr

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tasterdb/taster/internal/storage"
)

// Zone-map pruning soundness, held as a property over random tables and
// random predicates: whenever ZonePrunes says a partition can be skipped,
// scanning that partition and evaluating the predicate row by row must
// select nothing. The generator deliberately produces predicates far outside
// the analyzable col-op-const shape (ORs, NOTs, col-vs-col, arithmetic-free
// nesting) — for those ZonePrunes must simply decline, and a false "prune"
// on any of them is exactly the bug this test exists to catch.

// zoneTestSchema mirrors a fact table corner: one int, one float, one string
// column.
var zoneTestSchema = storage.Schema{
	{Name: "z.i", Typ: storage.Int64},
	{Name: "z.f", Typ: storage.Float64},
	{Name: "z.s", Typ: storage.String},
}

var zoneStrings = []string{"alpha", "beta", "gamma", "delta", "epsilon"}

// randZoneTable builds a random table over zoneTestSchema, split into a
// random number of partitions. Values are drawn from tight domains so random
// predicates exclude whole partitions often enough for the property to bite;
// occasional NaN floats exercise the incomparable paths.
func randZoneTable(r *rand.Rand) *storage.Table {
	b := storage.NewBuilder("z", zoneTestSchema)
	rows := r.Intn(200)
	for i := 0; i < rows; i++ {
		b.Int(0, int64(r.Intn(41)-20))
		if r.Intn(40) == 0 {
			b.Float(1, math.NaN())
		} else {
			b.Float(1, float64(r.Intn(21)-10)/2)
		}
		b.Str(2, zoneStrings[r.Intn(len(zoneStrings))])
	}
	return b.Build(1 + r.Intn(6))
}

// randZonePred generates a random type-correct predicate of bounded depth.
func randZonePred(r *rand.Rand, depth int) Expr {
	if depth > 0 && r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return &Logic{Op: And, L: randZonePred(r, depth-1), R: randZonePred(r, depth-1)}
		case 1:
			return &Logic{Op: Or, L: randZonePred(r, depth-1), R: randZonePred(r, depth-1)}
		default:
			return &Not{E: randZonePred(r, depth-1)}
		}
	}
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	op := ops[r.Intn(len(ops))]
	switch r.Intn(5) {
	case 0: // int col vs int const
		return &Cmp{Op: op, L: &Col{Name: "z.i"}, R: &Const{Val: storage.IntValue(int64(r.Intn(61) - 30))}}
	case 1: // float col vs numeric const (mixed int/float comparisons included)
		if r.Intn(2) == 0 {
			return &Cmp{Op: op, L: &Col{Name: "z.f"}, R: &Const{Val: storage.FloatValue(float64(r.Intn(31)-15) / 2)}}
		}
		return &Cmp{Op: op, L: &Col{Name: "z.f"}, R: &Const{Val: storage.IntValue(int64(r.Intn(21) - 10))}}
	case 2: // string col vs string const
		return &Cmp{Op: op, L: &Col{Name: "z.s"}, R: &Const{Val: storage.StringValue(zoneStrings[r.Intn(len(zoneStrings))])}}
	case 3: // col vs col — never analyzable, must never prune wrongly
		return &Cmp{Op: op, L: &Col{Name: "z.i"}, R: &Col{Name: "z.f"}}
	default: // IN list (possibly empty: an empty IN excludes everything)
		n := r.Intn(4)
		vals := make([]storage.Value, n)
		for i := range vals {
			vals[i] = storage.IntValue(int64(r.Intn(61) - 30))
		}
		return &In{E: &Col{Name: "z.i"}, Vals: vals}
	}
}

// TestZonePrunesSoundProperty: a pruned partition never contains a row the
// predicate accepts.
func TestZonePrunesSoundProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pruned, trials := 0, 3000
	for trial := 0; trial < trials; trial++ {
		tbl := randZoneTable(r)
		pred := randZonePred(r, 2)
		for p := 0; p < tbl.Partitions(); p++ {
			if !ZonePrunes(pred, zoneTestSchema, tbl.Zone(p)) {
				continue
			}
			pruned++
			lo, hi := tbl.PartitionRange(p)
			for _, b := range tbl.ScanRange(lo, hi, 64) {
				sel, err := EvalBool(pred, b)
				if err != nil {
					t.Fatalf("trial %d: eval %s: %v", trial, pred, err)
				}
				if len(sel) > 0 {
					t.Fatalf("trial %d: partition %d pruned by %s but row %d qualifies (zone %+v)",
						trial, p, pred, sel[0], tbl.Zone(p))
				}
			}
		}
	}
	// The property is vacuous if pruning never fires; the tight value
	// domains are chosen so it fires thousands of times.
	if pruned < 100 {
		t.Fatalf("pruning fired only %d times in %d trials; property coverage is vacuous", pruned, trials)
	}
}

// TestZonePrunesNeverOnNil: nil predicates and nil zones never prune, and an
// empty partition always does.
func TestZonePrunesNeverOnNil(t *testing.T) {
	b := storage.NewBuilder("z", zoneTestSchema)
	b.Int(0, 1)
	b.Float(1, 2)
	b.Str(2, "alpha")
	tbl := b.Build(1)
	pred := &Cmp{Op: EQ, L: &Col{Name: "z.i"}, R: &Const{Val: storage.IntValue(99)}}
	if ZonePrunes(nil, zoneTestSchema, tbl.Zone(0)) {
		t.Fatal("nil predicate pruned")
	}
	if ZonePrunes(pred, zoneTestSchema, nil) {
		t.Fatal("nil zone pruned")
	}
	empty := storage.NewBuilder("z", zoneTestSchema).Build(1)
	if !ZonePrunes(pred, zoneTestSchema, empty.Zone(0)) {
		t.Fatal("empty partition not pruned")
	}
}

// TestZonePrunesNaNNeverPrunes: a NaN bound poisons comparability; the zone
// must refuse to prune rather than guess.
func TestZonePrunesNaNNeverPrunes(t *testing.T) {
	b := storage.NewBuilder("z", zoneTestSchema)
	b.Int(0, 1)
	b.Float(1, math.NaN())
	b.Str(2, "alpha")
	tbl := b.Build(1)
	pred := &Cmp{Op: GT, L: &Col{Name: "z.f"}, R: &Const{Val: storage.FloatValue(1e9)}}
	if ZonePrunes(pred, zoneTestSchema, tbl.Zone(0)) {
		t.Fatal("NaN-bounded zone pruned")
	}
}

// TestZonePrunesNEWithHiddenNaN is the regression for the unsound NE prune:
// in a partition [5.0, NaN] the NaN row is skipped by the bounds scan, so
// Min == Max == 5.0 — but `f != 5.0` SELECTS the NaN row (Go's != is true
// for NaN against anything), so pruning would drop a qualifying row. The
// zone map must carry a HasNaN flag and NE must refuse to prune on it.
// Pruning the other operators stays sound: a NaN row compares false under
// ==, <, <=, >, >=, so exclusion by bounds never loses it.
func TestZonePrunesNEWithHiddenNaN(t *testing.T) {
	b := storage.NewBuilder("z", zoneTestSchema)
	for _, f := range []float64{5.0, math.NaN()} {
		b.Int(0, 1)
		b.Float(1, f)
		b.Str(2, "alpha")
	}
	tbl := b.Build(1)
	zone := tbl.Zone(0)
	fi := zoneTestSchema.Index("z.f")
	if !zone.HasNaN[fi] {
		t.Fatalf("zone did not record the NaN row: %+v", zone)
	}
	ne := &Cmp{Op: NE, L: &Col{Name: "z.f"}, R: &Const{Val: storage.FloatValue(5.0)}}
	if ZonePrunes(ne, zoneTestSchema, zone) {
		t.Fatalf("pruned [5.0, NaN] on f != 5.0, but the NaN row qualifies (zone %+v)", zone)
	}
	// Exclusion by the NaN-free bounds stays available for the safe shapes.
	for _, safe := range []Expr{
		&Cmp{Op: EQ, L: &Col{Name: "z.f"}, R: &Const{Val: storage.FloatValue(7.0)}},
		&Cmp{Op: GT, L: &Col{Name: "z.f"}, R: &Const{Val: storage.FloatValue(5.0)}},
		&Cmp{Op: LT, L: &Col{Name: "z.f"}, R: &Const{Val: storage.FloatValue(5.0)}},
	} {
		if !ZonePrunes(safe, zoneTestSchema, zone) {
			t.Fatalf("safe predicate %s no longer prunes [5.0, NaN]", safe)
		}
	}
	// Control: without the NaN row the NE prune is exactly what should fire.
	c := storage.NewBuilder("z", zoneTestSchema)
	c.Int(0, 1)
	c.Float(1, 5.0)
	c.Str(2, "alpha")
	clean := c.Build(1)
	if !ZonePrunes(ne, zoneTestSchema, clean.Zone(0)) {
		t.Fatal("NE prune on a constant NaN-free partition stopped firing")
	}
}

// TestZonePrunesSoundPropertyNaNHeavy replays the soundness property over a
// degenerate domain built to collide NE predicates with hidden NaN rows:
// floats are drawn from {1.5, NaN}, so constant-valued partitions carrying
// an off-bounds NaN occur constantly rather than almost never. The general
// property test keeps its broad domain; this one pins the failure class the
// broad domain reaches too rarely.
func TestZonePrunesSoundPropertyNaNHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pruned, trials := 0, 2000
	for trial := 0; trial < trials; trial++ {
		b := storage.NewBuilder("z", zoneTestSchema)
		rows := r.Intn(20)
		for i := 0; i < rows; i++ {
			b.Int(0, int64(r.Intn(3)))
			if r.Intn(3) == 0 {
				b.Float(1, math.NaN())
			} else {
				b.Float(1, 1.5)
			}
			b.Str(2, zoneStrings[r.Intn(2)])
		}
		tbl := b.Build(1 + r.Intn(4))
		var pred Expr = &Cmp{Op: []CmpOp{EQ, NE, LT, LE, GT, GE}[r.Intn(6)],
			L: &Col{Name: "z.f"}, R: &Const{Val: storage.FloatValue([]float64{1.5, 2.5}[r.Intn(2)])}}
		if r.Intn(3) == 0 {
			pred = &Logic{Op: And, L: pred, R: randZonePred(r, 1)}
		}
		for p := 0; p < tbl.Partitions(); p++ {
			if !ZonePrunes(pred, zoneTestSchema, tbl.Zone(p)) {
				continue
			}
			pruned++
			lo, hi := tbl.PartitionRange(p)
			for _, blk := range tbl.ScanRange(lo, hi, 64) {
				sel, err := EvalBool(pred, blk)
				if err != nil {
					t.Fatalf("trial %d: eval %s: %v", trial, pred, err)
				}
				if len(sel) > 0 {
					t.Fatalf("trial %d: partition %d pruned by %s but row %d qualifies (zone %+v)",
						trial, p, pred, sel[0], tbl.Zone(p))
				}
			}
		}
	}
	if pruned < 100 {
		t.Fatalf("pruning fired only %d times in %d trials; property coverage is vacuous", pruned, trials)
	}
}
