package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZQuantile(t *testing.T) {
	cases := []struct {
		conf, want float64
	}{
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
	}
	for _, c := range cases {
		if got := ZQuantile(c.conf); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("ZQuantile(%v) = %v, want %v", c.conf, got, c.want)
		}
	}
	if ZQuantile(0) != 0 {
		t.Fatal("ZQuantile(0)")
	}
	if z := ZQuantile(1); math.IsInf(z, 1) || z < 5 {
		t.Fatalf("ZQuantile(1) = %v, want large finite", z)
	}
	// Monotone in confidence.
	if ZQuantile(0.5) >= ZQuantile(0.9) {
		t.Fatal("ZQuantile must be monotone")
	}
}

func TestInverseNormalTails(t *testing.T) {
	if inverseNormalCDF(0.001) >= 0 || inverseNormalCDF(0.999) <= 0 {
		t.Fatal("tail signs wrong")
	}
	if !math.IsInf(inverseNormalCDF(0), -1) || !math.IsInf(inverseNormalCDF(1), 1) {
		t.Fatal("boundary values")
	}
	// Symmetry: Φ⁻¹(p) = −Φ⁻¹(1−p).
	for _, p := range []float64{0.01, 0.1, 0.3} {
		if math.Abs(inverseNormalCDF(p)+inverseNormalCDF(1-p)) > 1e-8 {
			t.Fatalf("asymmetry at p=%v", p)
		}
	}
}

func TestGroupAccumulatorExactWhenWeightOne(t *testing.T) {
	g := NewGroupAccumulator(Sum)
	for i := 1; i <= 10; i++ {
		g.Observe(float64(i), 1)
	}
	if g.Estimate() != 55 {
		t.Fatalf("sum = %v", g.Estimate())
	}
	if g.Variance() != 0 {
		t.Fatalf("variance of exact data = %v, want 0", g.Variance())
	}
	iv := g.Interval(0.95)
	if iv.HalfWidth != 0 || iv.RelError() != 0 {
		t.Fatalf("interval = %+v", iv)
	}
}

func TestGroupAccumulatorHTUnbiased(t *testing.T) {
	// Simulate uniform p=0.1 sampling of 10000 values v=1..10000 many times;
	// the mean of estimates should be near the true total.
	const (
		n      = 10000
		p      = 0.1
		trials = 60
	)
	truth := float64(n) * float64(n+1) / 2
	var estSum float64
	seed := uint64(12345)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%1e9) / 1e9
	}
	var relErrs []float64
	for tr := 0; tr < trials; tr++ {
		g := NewGroupAccumulator(Sum)
		for i := 1; i <= n; i++ {
			if next() < p {
				g.Observe(float64(i), 1/p)
			}
		}
		estSum += g.Estimate()
		iv := g.Interval(0.95)
		relErrs = append(relErrs, math.Abs(iv.Estimate-truth)/truth)
		if iv.HalfWidth <= 0 {
			t.Fatal("sampled data must have nonzero CI")
		}
	}
	meanEst := estSum / trials
	if rel := math.Abs(meanEst-truth) / truth; rel > 0.02 {
		t.Fatalf("HT mean estimate off by %.3f (not unbiased?)", rel)
	}
	// CLT sanity: typical relative error at p=0.1, n=10000 is well under 5%.
	bad := 0
	for _, r := range relErrs {
		if r > 0.05 {
			bad++
		}
	}
	if bad > trials/4 {
		t.Fatalf("%d/%d trials exceeded 5%% error", bad, trials)
	}
}

func TestAvgRatioEstimator(t *testing.T) {
	g := NewGroupAccumulator(Avg)
	// Weighted tuples: values 10 and 20 with weight 2 each → avg 15.
	g.Observe(10, 2)
	g.Observe(20, 2)
	if g.Estimate() != 15 {
		t.Fatalf("avg = %v", g.Estimate())
	}
	if g.Variance() < 0 {
		t.Fatal("variance must be non-negative")
	}
	empty := NewGroupAccumulator(Avg)
	if empty.Estimate() != 0 || empty.Variance() != 0 {
		t.Fatal("empty AVG must be 0")
	}
}

func TestMinMaxAggregates(t *testing.T) {
	g := NewGroupAccumulator(Min)
	g.Observe(5, 3)
	g.Observe(2, 10)
	if g.Estimate() != 2 {
		t.Fatalf("min = %v", g.Estimate())
	}
	iv := g.Interval(0.95)
	if iv.HalfWidth != 0 {
		t.Fatal("MIN carries no CLT interval")
	}
	h := NewGroupAccumulator(Max)
	h.Observe(5, 3)
	h.Observe(2, 10)
	if h.Estimate() != 5 {
		t.Fatalf("max = %v", h.Estimate())
	}
	if NewGroupAccumulator(Min).Estimate() != 0 {
		t.Fatal("empty MIN must be 0")
	}
	if Min.Approximable() || !Sum.Approximable() {
		t.Fatal("Approximable flags wrong")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	a, b, whole := NewGroupAccumulator(Sum), NewGroupAccumulator(Sum), NewGroupAccumulator(Sum)
	for i := 1; i <= 20; i++ {
		w := 1.0
		if i%3 == 0 {
			w = 4
		}
		whole.Observe(float64(i), w)
		if i <= 10 {
			a.Observe(float64(i), w)
		} else {
			b.Observe(float64(i), w)
		}
	}
	a.Merge(b)
	if a.Estimate() != whole.Estimate() || a.Variance() != whole.Variance() {
		t.Fatalf("merge mismatch: est %v vs %v, var %v vs %v",
			a.Estimate(), whole.Estimate(), a.Variance(), whole.Variance())
	}
	if a.Rows != whole.Rows || a.MinV != whole.MinV || a.MaxV != whole.MaxV {
		t.Fatal("merge lost bookkeeping")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Estimate: 100, HalfWidth: 10}
	if iv.Lo() != 90 || iv.Hi() != 110 {
		t.Fatal("bounds")
	}
	if iv.RelError() != 0.1 {
		t.Fatalf("rel error = %v", iv.RelError())
	}
	z := Interval{Estimate: 0, HalfWidth: 1}
	if !math.IsInf(z.RelError(), 1) {
		t.Fatal("zero-estimate rel error must be +Inf")
	}
}

func TestAccuracySpec(t *testing.T) {
	strict := AccuracySpec{RelError: 0.05, Confidence: 0.99}
	loose := AccuracySpec{RelError: 0.10, Confidence: 0.95}
	if !strict.AtLeastAsStrict(loose) {
		t.Fatal("strict should satisfy loose")
	}
	if loose.AtLeastAsStrict(strict) {
		t.Fatal("loose must not satisfy strict")
	}
	if !loose.AtLeastAsStrict(loose) {
		t.Fatal("spec satisfies itself")
	}
	if !DefaultAccuracy.Valid() || (AccuracySpec{}).Valid() {
		t.Fatal("Valid()")
	}
}

func TestRequiredRowsPerGroup(t *testing.T) {
	k1 := RequiredRowsPerGroup(1, AccuracySpec{RelError: 0.1, Confidence: 0.95})
	// (1.96/0.1)² ≈ 384.
	if k1 < 380 || k1 > 390 {
		t.Fatalf("k = %d, want ≈384", k1)
	}
	// Tighter error → more rows.
	k2 := RequiredRowsPerGroup(1, AccuracySpec{RelError: 0.05, Confidence: 0.95})
	if k2 <= k1 {
		t.Fatal("tighter error must need more rows")
	}
	// Floor of 30.
	if RequiredRowsPerGroup(0.01, AccuracySpec{RelError: 0.5, Confidence: 0.5}) != 30 {
		t.Fatal("floor")
	}
	// Invalid spec falls back to default.
	if RequiredRowsPerGroup(1, AccuracySpec{}) != RequiredRowsPerGroup(1, DefaultAccuracy) {
		t.Fatal("invalid spec fallback")
	}
}

func TestUniformProbability(t *testing.T) {
	p, ok := UniformProbability(100, 100000)
	if !ok || p > maxUniformP {
		t.Fatalf("large groups: p=%v ok=%v", p, ok)
	}
	if p*100000 < 100 {
		t.Fatalf("p=%v cannot deliver k rows", p)
	}
	// Tiny groups: uniform infeasible.
	if _, ok := UniformProbability(100, 200); ok {
		t.Fatal("tiny groups must reject uniform")
	}
	if _, ok := UniformProbability(10, 0); ok {
		t.Fatal("zero minGroup must reject")
	}
}

func TestDistinctParams(t *testing.T) {
	p, d := DistinctParams(100, 10000)
	if d != 100 {
		t.Fatalf("delta = %d", d)
	}
	if p != 0.01 {
		t.Fatalf("p = %v, want k/avgGroup = 0.01", p)
	}
	p, _ = DistinctParams(500, 1000)
	if p != maxUniformP {
		t.Fatalf("p must cap at 0.1, got %v", p)
	}
	p, _ = DistinctParams(1, 1e9)
	if p < 0.001 {
		t.Fatalf("p must floor at 0.001, got %v", p)
	}
}

func TestCMGeometry(t *testing.T) {
	eps, delta := CMGeometry(AccuracySpec{RelError: 0.1, Confidence: 0.95})
	if eps != 0.002 {
		t.Fatalf("eps = %v", eps)
	}
	if math.Abs(delta-0.05) > 1e-12 {
		t.Fatalf("delta = %v", delta)
	}
}

// Property: the variance estimator is non-negative and scale-consistent:
// scaling all values by c scales the SUM variance by c².
func TestVarianceScalingQuick(t *testing.T) {
	f := func(vals []uint8, scale uint8) bool {
		if len(vals) == 0 {
			return true
		}
		c := float64(scale%7 + 2)
		g1 := NewGroupAccumulator(Sum)
		g2 := NewGroupAccumulator(Sum)
		for _, v := range vals {
			w := float64(v%4) + 1
			g1.Observe(float64(v), w)
			g2.Observe(float64(v)*c, w)
		}
		v1, v2 := g1.Variance(), g2.Variance()
		if v1 < 0 || v2 < 0 {
			return false
		}
		return math.Abs(v2-c*c*v1) <= 1e-6*(1+v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
