// Package stats implements the estimation theory Taster relies on
// (paper §IV-B): Horvitz-Thompson estimators with CLT confidence intervals,
// the single-pass per-group variance algorithm, and the sample-size planning
// that turns "ERROR WITHIN x% AT CONFIDENCE y%" into sampler parameters.
package stats

import "math"

// ZQuantile returns the z-value z such that a symmetric normal interval
// ±z·σ has the given two-sided confidence (e.g. 0.95 → ≈1.96). It uses the
// Acklam rational approximation of the inverse normal CDF (|ε| < 1.15e-9).
func ZQuantile(confidence float64) float64 {
	if confidence <= 0 {
		return 0
	}
	if confidence >= 1 {
		confidence = 0.9999999
	}
	p := 0.5 + confidence/2 // upper quantile of two-sided interval
	return inverseNormalCDF(p)
}

// Coefficients of Acklam's inverse normal CDF approximation.
var (
	icdfA = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01,
		2.506628277459239e+00}
	icdfB = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	icdfC = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00,
		2.938163982698783e+00}
	icdfD = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
)

func inverseNormalCDF(p float64) float64 {
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((icdfC[0]*q+icdfC[1])*q+icdfC[2])*q+icdfC[3])*q+icdfC[4])*q + icdfC[5]) /
			((((icdfD[0]*q+icdfD[1])*q+icdfD[2])*q+icdfD[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((icdfA[0]*r+icdfA[1])*r+icdfA[2])*r+icdfA[3])*r+icdfA[4])*r + icdfA[5]) * q /
			(((((icdfB[0]*r+icdfB[1])*r+icdfB[2])*r+icdfB[3])*r+icdfB[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((icdfC[0]*q+icdfC[1])*q+icdfC[2])*q+icdfC[3])*q+icdfC[4])*q + icdfC[5]) /
			((((icdfD[0]*q+icdfD[1])*q+icdfD[2])*q+icdfD[3])*q + 1)
	}
}
