package stats

import "math"

// AggKind enumerates the aggregate functions the engine approximates.
type AggKind uint8

// Supported aggregates. MIN/MAX are computed over the sample without
// scaling (they carry no CLT confidence interval; approximating extrema by
// sampling is inherently biased, and the paper's workloads use them only on
// exact plans).
const (
	Count AggKind = iota
	Sum
	Avg
	Min
	Max
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	return [...]string{"COUNT", "SUM", "AVG", "MIN", "MAX"}[k]
}

// Approximable reports whether the aggregate supports HT estimation.
func (k AggKind) Approximable() bool { return k == Count || k == Sum || k == Avg }

// GroupAccumulator tracks one aggregate for one group in a single pass over
// weighted sample tuples. This is the paper's §IV-B algorithm: because HT
// error decomposes per stratification/grouping key, a hash table keyed by
// group holds a running estimate and running variance, giving a linear-time,
// single-pass error computation instead of the quadratic self-join.
//
// Variance bookkeeping: under Poisson/HT sampling with inclusion probability
// π_i = 1/w_i, the unbiased variance estimator of the HT total is
// Σ_S (1−π_i)/π_i² · y_i² = Σ_S w_i(w_i−1)·y_i², so each sampled tuple adds
// w(w−1)y² — zero for frequency-check tuples with w = 1, which is what makes
// distinct-sampler strata "exact" until the probability branch kicks in.
type GroupAccumulator struct {
	Kind AggKind

	SumY  float64 // Σ w·y       (HT total of the aggregate column)
	SumN  float64 // Σ w         (HT total of tuple count)
	VarY  float64 // Σ w(w−1)y²  (variance estimate of SumY)
	VarN  float64 // Σ w(w−1)    (variance estimate of SumN)
	CovYN float64 // Σ w(w−1)y   (covariance of SumY and SumN)
	Rows  int     // sample tuples observed
	MinV  float64
	MaxV  float64
}

// NewGroupAccumulator returns an accumulator for the aggregate kind.
func NewGroupAccumulator(kind AggKind) *GroupAccumulator {
	return &GroupAccumulator{Kind: kind, MinV: math.Inf(1), MaxV: math.Inf(-1)}
}

// Observe folds one sample tuple with value y and HT weight w.
func (g *GroupAccumulator) Observe(y, w float64) {
	g.Rows++
	g.SumY += w * y
	g.SumN += w
	c := w * (w - 1)
	g.VarY += c * y * y
	g.VarN += c
	g.CovYN += c * y
	if y < g.MinV {
		g.MinV = y
	}
	if y > g.MaxV {
		g.MaxV = y
	}
}

// Merge combines two accumulators over disjoint sample partitions.
func (g *GroupAccumulator) Merge(o *GroupAccumulator) {
	g.Rows += o.Rows
	g.SumY += o.SumY
	g.SumN += o.SumN
	g.VarY += o.VarY
	g.VarN += o.VarN
	g.CovYN += o.CovYN
	if o.MinV < g.MinV {
		g.MinV = o.MinV
	}
	if o.MaxV > g.MaxV {
		g.MaxV = o.MaxV
	}
}

// Estimate returns the point estimate of the aggregate.
func (g *GroupAccumulator) Estimate() float64 {
	switch g.Kind {
	case Count:
		return g.SumN
	case Sum:
		return g.SumY
	case Avg:
		if g.SumN == 0 {
			return 0
		}
		return g.SumY / g.SumN
	case Min:
		if g.Rows == 0 {
			return 0
		}
		return g.MinV
	case Max:
		if g.Rows == 0 {
			return 0
		}
		return g.MaxV
	}
	return 0
}

// Variance returns the estimated variance of the point estimate. For AVG it
// applies the delta method to the ratio SumY/SumN:
// Var(R̂) ≈ (Var(Ŷ) − 2R̂·Cov(Ŷ,N̂) + R̂²·Var(N̂)) / N̂².
func (g *GroupAccumulator) Variance() float64 {
	switch g.Kind {
	case Count:
		return g.VarN
	case Sum:
		return g.VarY
	case Avg:
		if g.SumN == 0 {
			return 0
		}
		r := g.SumY / g.SumN
		v := (g.VarY - 2*r*g.CovYN + r*r*g.VarN) / (g.SumN * g.SumN)
		if v < 0 {
			v = 0 // numerical noise on near-exact strata
		}
		return v
	}
	return 0
}

// Interval bundles an estimate with its confidence interval.
type Interval struct {
	Estimate  float64
	HalfWidth float64 // z·σ̂; 0 for exact or non-CLT aggregates
}

// Lo returns the interval's lower bound.
func (iv Interval) Lo() float64 { return iv.Estimate - iv.HalfWidth }

// Hi returns the interval's upper bound.
func (iv Interval) Hi() float64 { return iv.Estimate + iv.HalfWidth }

// RelError returns the half-width relative to the estimate (∞ for zero
// estimates with nonzero width).
func (iv Interval) RelError() float64 {
	if iv.HalfWidth == 0 {
		return 0
	}
	if iv.Estimate == 0 {
		return math.Inf(1)
	}
	return math.Abs(iv.HalfWidth / iv.Estimate)
}

// Interval returns the CLT confidence interval at the given confidence
// level (e.g. 0.95).
func (g *GroupAccumulator) Interval(confidence float64) Interval {
	est := g.Estimate()
	if !g.Kind.Approximable() {
		return Interval{Estimate: est}
	}
	return Interval{Estimate: est, HalfWidth: ZQuantile(confidence) * math.Sqrt(g.Variance())}
}
