package stats

import "math"

// AccuracySpec is the user's "ERROR WITHIN x% AT CONFIDENCE y%" clause.
type AccuracySpec struct {
	RelError   float64 // target relative error, e.g. 0.10
	Confidence float64 // confidence level, e.g. 0.95
}

// DefaultAccuracy mirrors the paper's evaluation setting: relative error per
// group below 10%, no missing groups (confidence 95%).
var DefaultAccuracy = AccuracySpec{RelError: 0.10, Confidence: 0.95}

// AtLeastAsStrict reports whether spec a satisfies spec b, i.e. a synopsis
// built for a can serve a query demanding b (paper §IV-A: "the accuracy
// requirement of the query generating the synopsis is equal or weaker").
func (a AccuracySpec) AtLeastAsStrict(b AccuracySpec) bool {
	return a.RelError <= b.RelError+1e-12 && a.Confidence >= b.Confidence-1e-12
}

// Valid reports whether the spec is sensible.
func (a AccuracySpec) Valid() bool {
	return a.RelError > 0 && a.RelError < 1 && a.Confidence > 0 && a.Confidence < 1
}

// RequiredRowsPerGroup returns the sample size k per group needed to hit the
// spec for a column with coefficient of variation cv, from the CLT sample
// size formula n = (z·cv/e)². A floor of 30 keeps the normal approximation
// honest for low-variance columns.
func RequiredRowsPerGroup(cv float64, spec AccuracySpec) int {
	if !spec.Valid() {
		spec = DefaultAccuracy
	}
	if cv <= 0 {
		cv = 1
	}
	z := ZQuantile(spec.Confidence)
	n := math.Ceil(math.Pow(z*cv/spec.RelError, 2))
	if n < 30 {
		n = 30
	}
	return int(n)
}

// maxUniformP is the paper's §IV-A cutoff: the uniform sampler is chosen
// only when some probability p ≤ 0.1 suffices. Larger p means the sample is
// barely smaller than the data and sampling would not pay for itself.
const maxUniformP = 0.1

// UniformProbability returns the sampling probability that makes the
// smallest group of size minGroup receive at least k rows with high
// probability, and whether that probability passes the paper's p ≤ 0.1
// usefulness bar. A Chernoff-style slack of 3·√(k) draws covers the "w.h.p."
// part: we solve p·minGroup ≥ k + 3√k.
func UniformProbability(k, minGroup int) (p float64, ok bool) {
	if minGroup <= 0 {
		return 1, false
	}
	need := float64(k) + 3*math.Sqrt(float64(k))
	p = need / float64(minGroup)
	if p >= 1 {
		return 1, false
	}
	return p, p <= maxUniformP
}

// DistinctParams returns (p, δ) for the distinct sampler: δ guarantees k
// rows per stratum outright, and p thins the heavy strata. p is chosen so
// large groups still contribute ≥k probabilistic rows and is capped at 0.1
// to retain the performance win; δ = k.
func DistinctParams(k, avgGroup int) (p float64, delta int) {
	delta = k
	if avgGroup <= 0 {
		return 0.05, delta
	}
	p = float64(k) / float64(avgGroup)
	if p > maxUniformP {
		p = maxUniformP
	}
	if p < 0.001 {
		p = 0.001
	}
	return p, delta
}

// CMGeometry converts an accuracy spec into count-min sketch dimensions:
// ε = RelError scaled down (CM error is relative to the L1 norm N, which is
// much larger than any single group's value, so ε must be far below the
// target relative error; the /50 heuristic keeps sketches in the paper's
// "few MB" range while passing the 10% group-error bar in our workloads),
// and δ = 1 − Confidence.
func CMGeometry(spec AccuracySpec) (eps, delta float64) {
	if !spec.Valid() {
		spec = DefaultAccuracy
	}
	return spec.RelError / 50, 1 - spec.Confidence
}
