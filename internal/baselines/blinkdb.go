// Package baselines implements the comparison systems of the paper's
// evaluation (§VI): BlinkDB-style offline sample selection (fed by an
// oracle workload, as the paper's own re-implementation was), and the
// VerdictDB-style offline hints pipeline for Taster+hints. The Quickr and
// exact baselines are core engine modes (core.ModeQuickr, core.ModeExact).
package baselines

import (
	"fmt"
	"sort"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/planner"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// OfflineStats reports the cost of an offline preparation phase, split the
// way the paper's figures split it.
type OfflineStats struct {
	SimSeconds     float64 // simulated cluster time of the offline phase
	ScrambleSecs   float64 // portion spent creating scrambled copies (hints)
	SamplesBuilt   int
	BytesGenerated int64
}

// qcs is one BlinkDB "query column set": a table plus the stratification
// columns the workload's queries need on it.
type qcs struct {
	table string
	cols  []string
	freq  int
}

func (q qcs) key() string {
	return q.table + "|" + fmt.Sprint(q.cols)
}

// BlinkDBOffline analyses the oracle workload, selects the best set of
// stratified samples under the storage budget (frequency-weighted greedy —
// the selection the paper says the MILP of [4] would make on these
// workloads), builds them with the two-pass stratified sampler, pins them
// in a ModeOffline engine, and returns the engine plus offline costs.
func BlinkDBOffline(cat *storage.Catalog, oracleQueries []string, budget int64, model storage.CostModel, seed uint64) (*core.Engine, OfflineStats, error) {
	eng := core.New(cat, core.Config{
		Mode:          core.ModeOffline,
		StorageBudget: budget,
		BufferSize:    1 << 20,
		CostModel:     model,
		Seed:          seed,
	})
	var off OfflineStats

	// 1. Extract QCSes from the oracle workload.
	counts := make(map[string]*qcs)
	for _, sql := range oracleQueries {
		q, err := sqlparser.Parse(sql, cat)
		if err != nil {
			return nil, off, fmt.Errorf("baselines: oracle query: %w", err)
		}
		table, cols := queryQCS(q)
		if table == "" {
			continue
		}
		c := qcs{table: table, cols: cols}
		if got, ok := counts[c.key()]; ok {
			got.freq++
		} else {
			c.freq = 1
			counts[c.key()] = &c
		}
	}
	all := make([]*qcs, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	// Deterministic frequency-descending order.
	sort.Slice(all, func(i, j int) bool {
		if all[i].freq != all[j].freq {
			return all[i].freq > all[j].freq
		}
		return all[i].key() < all[j].key()
	})

	// 2. Build samples greedily until the budget is exhausted.
	k := stats.RequiredRowsPerGroup(1, stats.DefaultAccuracy)
	used := int64(0)
	for i, c := range all {
		tbl, err := cat.Table(c.table)
		if err != nil {
			continue
		}
		smp, err := synopses.StratifiedSample(
			fmt.Sprintf("blinkdb_%s_%d", c.table, i), tbl, c.cols, k, seed+uint64(i))
		if err != nil {
			continue
		}
		size := smp.SizeBytes()
		if used+size > budget {
			continue // skip; try smaller QCSes (greedy knapsack)
		}
		// Two blocking passes over the table plus the sample write — the
		// offline cost BlinkDB pays and Taster avoids (paper Fig. 3).
		off.SimSeconds += 2*(model.ScanSeconds(tbl.Bytes())+model.CPUSeconds(int64(tbl.NumRows()))) +
			model.WriteSeconds(size)
		off.SamplesBuilt++
		off.BytesGenerated += size
		used += size
		if _, err := eng.PinSample(c.table, smp, c.cols, numericCols(tbl), stats.DefaultAccuracy); err != nil {
			return nil, off, err
		}
	}
	return eng, off, nil
}

// queryQCS derives the (fact table, stratification columns) a BlinkDB
// sample would need for the query: the columns appearing in GROUP BY and
// equality WHERE clauses on the fact table (BlinkDB's "query column sets" —
// join keys are deliberately excluded, as BlinkDB's are).
func queryQCS(q *planner.Query) (string, []string) {
	fact := q.FactTable().Name
	var cols []string
	for _, g := range q.GroupBy {
		if q.TableOf(g) == fact {
			cols = append(cols, g)
		}
	}
	if f := q.FilterForTable(fact); f != nil {
		cols = append(cols, expr.EqualityColumns(f)...)
	}
	return fact, expr.DedupCols(cols)
}

// numericCols lists a table's numeric columns (declared as the aggregate
// columns the sample was sized for — BlinkDB samples serve any aggregate
// over the table).
func numericCols(tbl *storage.Table) []string {
	var out []string
	for _, c := range tbl.Schema() {
		if c.Typ.Numeric() {
			out = append(out, c.Name)
		}
	}
	return out
}
