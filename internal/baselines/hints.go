package baselines

import (
	"fmt"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/synopses"
)

// Hint asks Taster to pre-build one sample offline (paper §V "User hints",
// §VI-E): the named table is scrambled and sampled with VerdictDB-style
// variational subsampling, then pinned in the warehouse.
type Hint struct {
	Table string
	// StratCols declares the stratification the sample guarantees (the
	// hint-giver knows the analysis; e.g. l_orderkey for TPC-H lineitem).
	StratCols []string
	// AggCols declares which columns the sample was sized for.
	AggCols []string
	// P is the sampling ratio; 0 derives it from DefaultAccuracy.
	P float64
}

// ApplyHints performs the offline phase on an existing Taster engine:
// scramble each hinted table (charged to the offline clock, like
// VerdictDB's scrambled-copy step), draw the variational sample, and pin
// it. Returns the offline cost split into scramble and sampling parts,
// mirroring Fig. 7's stacked bars.
func ApplyHints(eng *core.Engine, hints []Hint, model storage.CostModel, seed uint64) (OfflineStats, error) {
	var off OfflineStats
	for i, h := range hints {
		tbl, err := eng.Catalog().Table(h.Table)
		if err != nil {
			return off, fmt.Errorf("baselines: hint %d: %w", i, err)
		}
		p := h.P
		if p <= 0 {
			// Variational subsampling tolerates smaller samples than CLT
			// sizing (its error estimate does not need per-group tuple
			// variance); aim for ~k rows per stratum at half the CLT size.
			k := stats.RequiredRowsPerGroup(1, stats.DefaultAccuracy) / 2
			groups := tbl.GroupCount(h.StratCols)
			if groups < 1 {
				groups = 1
			}
			p = float64(k) * float64(groups) / float64(tbl.NumRows())
			if p > 0.2 {
				p = 0.2
			}
			if p < 0.001 {
				p = 0.001
			}
		}

		// Step 1: scrambled clone (scan + write of the full table).
		scrambled := synopses.Scramble(tbl, seed+uint64(i))
		scrambleCost := model.ScanSeconds(tbl.Bytes()) +
			model.CPUSeconds(int64(tbl.NumRows())) +
			model.WriteSeconds(tbl.Bytes())
		off.ScrambleSecs += scrambleCost
		off.SimSeconds += scrambleCost

		// Step 2: variational sample over the scramble (one more pass).
		smp := synopses.VariationalSample(
			fmt.Sprintf("hint_%s_%d", h.Table, i), scrambled, p, seed+uint64(i)*7919)
		off.SimSeconds += model.ScanSeconds(tbl.Bytes()) +
			model.CPUSeconds(int64(tbl.NumRows())) +
			model.WriteSeconds(smp.SizeBytes())
		off.SamplesBuilt++
		off.BytesGenerated += smp.SizeBytes()

		// The pinned accuracy is declared stricter than the default so the
		// sample serves all default-accuracy queries (VerdictDB's smaller
		// samples reach the same error through variational estimation).
		acc := stats.AccuracySpec{RelError: 0.05, Confidence: 0.99}
		if _, err := eng.PinSample(h.Table, smp, h.StratCols, h.AggCols, acc); err != nil {
			return off, fmt.Errorf("baselines: hint %d: %w", i, err)
		}
	}
	return off, nil
}
