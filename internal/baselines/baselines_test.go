package baselines

import (
	"testing"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

func tpchSmall() *workload.Workload { return workload.TPCH(0.002, 11) }

func TestBlinkDBOfflineBuildsWithinBudget(t *testing.T) {
	w := tpchSmall()
	bytes, rows := w.CostScale()
	model := storage.ScaledCostModel(bytes, rows)
	oracle := w.Queries(30, 5)
	budget := bytes / 2

	eng, off, err := BlinkDBOffline(w.Catalog, oracle, budget, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	if off.SamplesBuilt == 0 {
		t.Fatal("no samples built")
	}
	if off.BytesGenerated > budget {
		t.Fatalf("samples %d bytes exceed budget %d", off.BytesGenerated, budget)
	}
	if off.SimSeconds <= 0 {
		t.Fatal("offline phase must cost time")
	}
	_, wu := eng.Warehouse().Usage()
	if wu != off.BytesGenerated {
		t.Fatalf("warehouse usage %d != generated %d", wu, off.BytesGenerated)
	}

	// Queries covered by the oracle get approximate (reuse) plans; the
	// engine never samples at query time.
	reused, exact := 0, 0
	for _, sql := range w.Queries(20, 6) {
		q, err := sqlparser.Parse(sql, w.Catalog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if len(res.Report.CreatedSynopses) != 0 {
			t.Fatal("BlinkDB must not materialize at query time")
		}
		if len(res.Report.UsedSynopses) > 0 {
			reused++
		} else {
			exact++
		}
	}
	if reused == 0 {
		t.Fatal("oracle-covered workload must reuse offline samples")
	}
	t.Logf("blinkdb: %d reused, %d exact, %d samples, offline %.1fs",
		reused, exact, off.SamplesBuilt, off.SimSeconds)
}

func TestBlinkDBSmallBudgetBuildsLess(t *testing.T) {
	w := tpchSmall()
	bytes, rows := w.CostScale()
	model := storage.ScaledCostModel(bytes, rows)
	oracle := w.Queries(30, 5)

	_, offBig, err := BlinkDBOffline(w.Catalog, oracle, bytes, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, offSmall, err := BlinkDBOffline(w.Catalog, oracle, bytes/20, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	if offSmall.BytesGenerated > offBig.BytesGenerated {
		t.Fatalf("smaller budget generated more bytes: %d vs %d",
			offSmall.BytesGenerated, offBig.BytesGenerated)
	}
	if offSmall.SimSeconds > offBig.SimSeconds {
		t.Fatal("smaller budget must not cost more offline time")
	}
}

func TestBlinkDBRejectsBadOracle(t *testing.T) {
	w := tpchSmall()
	bytes, rows := w.CostScale()
	model := storage.ScaledCostModel(bytes, rows)
	if _, _, err := BlinkDBOffline(w.Catalog, []string{"NOT SQL"}, bytes, model, 1); err == nil {
		t.Fatal("want parse error")
	}
}

func TestApplyHints(t *testing.T) {
	w := tpchSmall()
	bytes, rows := w.CostScale()
	model := storage.ScaledCostModel(bytes, rows)
	eng := core.New(w.Catalog, core.Config{
		Mode:          core.ModeTaster,
		StorageBudget: bytes,
		BufferSize:    bytes / 4,
		CostModel:     model,
		Seed:          5,
	})
	off, err := ApplyHints(eng, []Hint{{
		Table:     "lineitem",
		StratCols: []string{"lineitem.l_returnflag", "lineitem.l_linestatus"},
		AggCols:   []string{"lineitem.l_quantity", "lineitem.l_extendedprice", "lineitem.l_discount"},
	}}, model, 5)
	if err != nil {
		t.Fatal(err)
	}
	if off.SamplesBuilt != 1 || off.ScrambleSecs <= 0 || off.SimSeconds <= off.ScrambleSecs {
		t.Fatalf("offline stats: %+v", off)
	}
	// The pinned hint must serve a q1-style query immediately.
	q, err := sqlparser.Parse(w.QueriesFromTemplates([]string{"q1"}, 1, 2)[0], w.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.UsedSynopses) == 0 {
		t.Fatalf("hinted sample unused; plan = %s", res.Report.PlanDesc)
	}
	// Unknown table errors.
	if _, err := ApplyHints(eng, []Hint{{Table: "nope"}}, model, 1); err == nil {
		t.Fatal("want unknown table error")
	}
}
