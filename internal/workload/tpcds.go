package workload

import (
	"fmt"
	"math/rand"

	"github.com/tasterdb/taster/internal/storage"
)

// TPCDS generates a TPC-DS-shaped star schema (store_sales fact with
// date_dim, item, store dimensions) at the given scale and 20 aggregate
// templates. The workload repeatedly exercises the store_sales⋈date_dim
// join, which is where the paper attributes Taster's TPC-DS advantage:
// summaries of that intermediate result get reused across queries (§VI-A).
func TPCDS(sf float64, seed int64) *Workload {
	if sf <= 0 {
		sf = 0.01
	}
	r := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()
	var rows int64

	nDates := 365 * 5
	nItems := maxRows(sf, 18000)
	nStores := maxRows(sf, 100) // small dimension
	if nStores < 5 {
		nStores = 5
	}
	nSales := maxRows(sf, 2880000)

	categories := []string{"Books", "Electronics", "Home", "Jewelry", "Music", "Shoes", "Sports", "Toys", "Children", "Men", "Women"}
	states := []string{"CA", "NY", "TX", "WA", "IL", "GA", "OH", "MI"}

	db := storage.NewBuilder("date_dim", storage.Schema{
		{Name: "date_dim.d_date_sk", Typ: storage.Int64},
		{Name: "date_dim.d_year", Typ: storage.Int64},
		{Name: "date_dim.d_moy", Typ: storage.Int64},
		{Name: "date_dim.d_dow", Typ: storage.Int64},
	})
	for i := 0; i < nDates; i++ {
		db.Int(0, int64(i))
		db.Int(1, int64(1998+i/365))
		db.Int(2, int64((i/30)%12+1))
		db.Int(3, int64(i%7))
	}
	cat.Register(db.Build(1))
	rows += int64(nDates)

	ib := storage.NewBuilder("item", storage.Schema{
		{Name: "item.i_item_sk", Typ: storage.Int64},
		{Name: "item.i_category", Typ: storage.String},
		{Name: "item.i_brand_id", Typ: storage.Int64},
		{Name: "item.i_current_price", Typ: storage.Float64},
	})
	for i := 0; i < nItems; i++ {
		ib.Int(0, int64(i))
		ib.Str(1, pick(r, categories))
		ib.Int(2, int64(r.Intn(50)))
		ib.Float(3, 1+r.Float64()*99)
	}
	cat.Register(ib.Build(2))
	rows += int64(nItems)

	stb := storage.NewBuilder("store", storage.Schema{
		{Name: "store.s_store_sk", Typ: storage.Int64},
		{Name: "store.s_state", Typ: storage.String},
	})
	for i := 0; i < nStores; i++ {
		stb.Int(0, int64(i))
		stb.Str(1, pick(r, states))
	}
	cat.Register(stb.Build(1))
	rows += int64(nStores)

	ssb := storage.NewBuilder("store_sales", storage.Schema{
		{Name: "store_sales.ss_sold_date_sk", Typ: storage.Int64},
		{Name: "store_sales.ss_item_sk", Typ: storage.Int64},
		{Name: "store_sales.ss_store_sk", Typ: storage.Int64},
		{Name: "store_sales.ss_quantity", Typ: storage.Float64},
		{Name: "store_sales.ss_sales_price", Typ: storage.Float64},
		{Name: "store_sales.ss_net_profit", Typ: storage.Float64},
	})
	for i := 0; i < nSales; i++ {
		price := 1 + r.Float64()*99
		qty := float64(r.Intn(20) + 1)
		ssb.Int(0, int64(r.Intn(nDates)))
		ssb.Int(1, int64(r.Intn(nItems)))
		ssb.Int(2, int64(r.Intn(nStores)))
		ssb.Float(3, qty)
		ssb.Float(4, price*qty)
		ssb.Float(5, price*qty*(r.Float64()*0.4-0.1))
	}
	cat.Register(ssb.Build(8))
	rows += int64(nSales)

	year := func(r *rand.Rand) int { return 1998 + r.Intn(5) }
	moy := func(r *rand.Rand) int { return 1 + r.Intn(12) }
	tpl := func(name string, f func(r *rand.Rand) string) Template {
		return Template{Name: name, Instantiate: f}
	}

	templates := []Template{
		// store_sales ⋈ date_dim family — the recurring intermediate result.
		tpl("ds1", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_moy, SUM(ss_sales_price) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE d_year = %d AND d_moy >= %d GROUP BY d_moy`, year(r), moy(r))
		}),
		tpl("ds2", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_year, AVG(ss_quantity) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE d_year >= %d AND d_moy = %d GROUP BY d_year`, year(r), moy(r))
		}),
		tpl("ds3", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_dow, COUNT(*) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE d_year = %d AND d_moy <= %d GROUP BY d_dow`, year(r), moy(r))
		}),
		tpl("ds4", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_moy, SUM(ss_net_profit) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE d_year = %d AND d_dow < %d GROUP BY d_moy`, year(r), 1+r.Intn(6))
		}),
		tpl("ds5", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_year, SUM(ss_quantity) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE d_moy = %d AND d_dow = %d GROUP BY d_year`, moy(r), r.Intn(7))
		}),
		tpl("ds6", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_moy, AVG(ss_sales_price) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE d_year = %d AND d_moy > %d GROUP BY d_moy`, year(r), moy(r)-1)
		}),
		// + item dimension.
		tpl("ds7", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_category, SUM(ss_sales_price) FROM store_sales JOIN item ON ss_item_sk = i_item_sk JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE i_category = '%s' AND d_year = %d GROUP BY i_category`, pick(r, categories), year(r))
		}),
		tpl("ds8", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_brand_id, COUNT(*) FROM store_sales JOIN item ON ss_item_sk = i_item_sk WHERE i_category = '%s' AND i_current_price > %d GROUP BY i_brand_id`, pick(r, categories), 10+r.Intn(50))
		}),
		tpl("ds9", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_category, AVG(ss_net_profit) FROM store_sales JOIN item ON ss_item_sk = i_item_sk WHERE i_category <> '%s' AND i_current_price < %d GROUP BY i_category`, pick(r, categories), 40+r.Intn(60))
		}),
		tpl("ds10", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_category, SUM(ss_quantity) FROM store_sales JOIN item ON ss_item_sk = i_item_sk WHERE i_brand_id = %d GROUP BY i_category`, r.Intn(50))
		}),
		// + store dimension.
		tpl("ds11", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT s_state, SUM(ss_sales_price) FROM store_sales JOIN store ON ss_store_sk = s_store_sk WHERE s_state = '%s' AND ss_quantity > %d GROUP BY s_state`, pick(r, states), 2+r.Intn(10))
		}),
		tpl("ds12", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT s_state, COUNT(*) FROM store_sales JOIN store ON ss_store_sk = s_store_sk WHERE s_state <> '%s' AND ss_sales_price > %d GROUP BY s_state`, pick(r, states), 50+r.Intn(400))
		}),
		tpl("ds13", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT s_state, AVG(ss_net_profit) FROM store_sales JOIN store ON ss_store_sk = s_store_sk JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE s_state = '%s' AND d_year = %d GROUP BY s_state`, pick(r, states), year(r))
		}),
		// single-table sweeps.
		tpl("ds14", func(r *rand.Rand) string {
			lo := 1 + r.Intn(8)
			return fmt.Sprintf(`SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales WHERE ss_quantity BETWEEN %d AND %d GROUP BY ss_store_sk`, lo, lo+8)
		}),
		tpl("ds15", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT ss_store_sk, AVG(ss_net_profit) FROM store_sales WHERE ss_sales_price > %d AND ss_quantity < %d GROUP BY ss_store_sk`, 50+r.Intn(300), 10+r.Intn(10))
		}),
		tpl("ds16", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT COUNT(*) FROM store_sales WHERE ss_quantity >= %d AND ss_sales_price < %d`, 1+r.Intn(10), 100+r.Intn(900))
		}),
		// three-way star.
		tpl("ds17", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_year, SUM(ss_sales_price) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk JOIN item ON ss_item_sk = i_item_sk WHERE i_category = '%s' AND d_year >= %d GROUP BY d_year`, pick(r, categories), year(r))
		}),
		tpl("ds18", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_category, COUNT(*) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk JOIN item ON ss_item_sk = i_item_sk WHERE i_category <> '%s' AND d_moy = %d GROUP BY i_category`, pick(r, categories), moy(r))
		}),
		tpl("ds19", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_moy, SUM(ss_net_profit) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk JOIN store ON ss_store_sk = s_store_sk WHERE s_state = '%s' AND d_year = %d GROUP BY d_moy`, pick(r, states), year(r))
		}),
		tpl("ds20", func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_year, d_moy, SUM(ss_sales_price) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk WHERE d_year = %d AND d_dow <= %d GROUP BY d_year, d_moy`, year(r), 2+r.Intn(5))
		}),
	}

	return &Workload{Name: "tpcds", Catalog: cat, Templates: templates, TotalRows: rows}
}
