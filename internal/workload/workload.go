// Package workload provides the three benchmark datasets and query
// workloads of the paper's evaluation (§VI): a TPC-H-shaped generator with
// the 18 approximable query templates, a TPC-DS-shaped star schema with 20
// templates (heavy store_sales⋈date_dim reuse), and the instacart grocery
// micro-benchmark with the 8 Table-I templates. All generators are
// deterministic for a given seed and scale.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/tasterdb/taster/internal/storage"
)

// Template is one parameterized query: Instantiate returns SQL text with
// randomly chosen predicate values (the paper "generates a new query by
// randomly choosing the predicate value").
type Template struct {
	Name string
	// Epoch groups TPC-H templates for the Fig. 6 workload-shift experiment
	// (0 = not part of any epoch).
	Epoch int
	// Kind is "sample" or "sketch" for the instacart templates (Table I).
	Kind string
	// Instantiate produces SQL with random parameters.
	Instantiate func(r *rand.Rand) string
}

// Workload couples a generated dataset with its query templates.
type Workload struct {
	Name      string
	Catalog   *storage.Catalog
	Templates []Template
	TotalRows int64
}

// CostScale returns (totalBytes, totalRows) for storage.ScaledCostModel.
func (w *Workload) CostScale() (int64, int64) {
	return w.Catalog.TotalBytes(), w.TotalRows
}

// Queries instantiates n queries by uniformly random template choice
// (paper §VI-A methodology), appending the standard accuracy clause.
func (w *Workload) Queries(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		t := w.Templates[r.Intn(len(w.Templates))]
		out[i] = t.Instantiate(r) + " ERROR WITHIN 10% AT CONFIDENCE 95%"
	}
	return out
}

// QueriesFromTemplates instantiates n queries drawn from a template subset.
func (w *Workload) QueriesFromTemplates(names []string, n int, seed int64) []string {
	var pool []Template
	for _, t := range w.Templates {
		for _, name := range names {
			if t.Name == name {
				pool = append(pool, t)
			}
		}
	}
	if len(pool) == 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		t := pool[r.Intn(len(pool))]
		out[i] = t.Instantiate(r) + " ERROR WITHIN 10% AT CONFIDENCE 95%"
	}
	return out
}

// Template returns the named template.
func (w *Workload) Template(name string) (Template, error) {
	for _, t := range w.Templates {
		if t.Name == name {
			return t, nil
		}
	}
	return Template{}, fmt.Errorf("workload: unknown template %q", name)
}

// names/pools shared by the generators.
var (
	regionNames   = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames   = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments      = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	brands        = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41"}
	containers    = []string{"SM CASE", "SM BOX", "SM PACK", "MED BAG", "MED BOX", "MED PKG", "LG CASE", "LG BOX", "LG PACK", "JUMBO PKG"}
	partTypes     = []string{"STANDARD TIN", "SMALL BRASS", "MEDIUM COPPER", "LARGE STEEL", "ECONOMY NICKEL", "PROMO ANODIZED"}
	returnFlags   = []string{"A", "N", "R"}
	lineStatuses  = []string{"O", "F"}
	orderStatuses = []string{"O", "F", "P"}
)

func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }
