package workload

import (
	"math/rand"
	"testing"
)

func TestStreamDeterministicInterleaving(t *testing.T) {
	gen := func() []StreamOp {
		w := TPCH(0.002, 1)
		ops, err := w.Stream(StreamConfig{Queries: 20, AppendEvery: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return ops
	}
	a, b := gen(), gen()
	// 20 queries + 4 appends: no trailing append after the final query.
	if len(a) != len(b) || len(a) != 24 {
		t.Fatalf("ops = %d / %d, want 24", len(a), len(b))
	}
	appends := 0
	for i := range a {
		if (a[i].Append == nil) != (b[i].Append == nil) || a[i].SQL != b[i].SQL {
			t.Fatalf("op %d differs between generations", i)
		}
		if a[i].Append == nil {
			continue
		}
		appends++
		ra, rb := a[i].Append.Rows, b[i].Append.Rows
		if a[i].Append.Table != b[i].Append.Table || ra.NumRows() != rb.NumRows() {
			t.Fatalf("append op %d differs", i)
		}
		for c := 0; c < len(ra.Schema()); c++ {
			for r := 0; r < ra.NumRows(); r++ {
				if !ra.Column(c).Get(r).Equal(rb.Column(c).Get(r)) {
					t.Fatalf("append op %d cell (%d,%d) differs", i, c, r)
				}
			}
		}
	}
	if appends != 4 {
		t.Fatalf("appends = %d, want 4", appends)
	}
	// Appends target the largest table (lineitem for TPC-H) and match its
	// schema, so the engine can ingest them directly.
	w := TPCH(0.002, 1)
	li, _ := w.Catalog.Table("lineitem")
	for _, op := range a {
		if op.Append == nil {
			continue
		}
		if op.Append.Table != "lineitem" {
			t.Fatalf("append targets %q, want lineitem", op.Append.Table)
		}
		if !op.Append.Rows.Schema().Equal(li.Schema()) {
			t.Fatal("append batch schema mismatch")
		}
	}
}

func TestResampleBatchDrawsFromSource(t *testing.T) {
	w := TPCH(0.002, 1)
	li, _ := w.Catalog.Table("lineitem")
	b := ResampleBatch(li, 50, rand.New(rand.NewSource(3)))
	if b.NumRows() != 50 {
		t.Fatalf("rows = %d", b.NumRows())
	}
	if _, err := li.Append(b); err != nil {
		t.Fatalf("resampled batch must be appendable: %v", err)
	}
}
