package workload

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
)

func TestTPCHGeneration(t *testing.T) {
	w := TPCH(0.002, 1)
	for _, tbl := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		if _, err := w.Catalog.Table(tbl); err != nil {
			t.Fatalf("missing table %s: %v", tbl, err)
		}
	}
	li, _ := w.Catalog.Table("lineitem")
	or, _ := w.Catalog.Table("orders")
	if li.NumRows() != or.NumRows()*4 {
		t.Fatalf("lineitem %d != 4×orders %d", li.NumRows(), or.NumRows())
	}
	if len(w.Templates) != 18 {
		t.Fatalf("templates = %d, want 18 (paper uses 18 of 22)", len(w.Templates))
	}
	if w.TotalRows <= 0 || w.Catalog.TotalBytes() <= 0 {
		t.Fatal("scale accounting")
	}
}

func TestTPCHEpochs(t *testing.T) {
	// Fig. 6 epochs from the paper.
	want := map[int][]string{
		1: {"q6", "q14", "q17"},
		2: {"q5", "q8", "q11", "q12"},
		3: {"q1", "q3", "q16", "q19"},
		4: {"q7", "q9", "q13", "q18"},
	}
	for e, names := range want {
		got := TPCHEpoch(e)
		if len(got) != len(names) {
			t.Fatalf("epoch %d = %v, want %v", e, got, names)
		}
		for i := range names {
			if got[i] != names[i] {
				t.Fatalf("epoch %d = %v, want %v", e, got, names)
			}
		}
	}
}

// Every template of every workload must parse, bind and execute end to end.
func TestAllTemplatesExecutable(t *testing.T) {
	workloads := []*Workload{TPCH(0.002, 1), TPCDS(0.002, 2), Instacart(0.02, 3)}
	for _, w := range workloads {
		bytes, rows := w.CostScale()
		eng := core.New(w.Catalog, core.Config{
			Mode:          core.ModeTaster,
			StorageBudget: bytes / 2,
			BufferSize:    bytes / 4,
			CostModel:     storage.ScaledCostModel(bytes, rows),
			Seed:          9,
		})
		for _, tmpl := range w.Templates {
			qsql := tmpl.Instantiate(rand.New(rand.NewSource(7))) + " ERROR WITHIN 10% AT CONFIDENCE 95%"
			q, err := sqlparser.Parse(qsql, w.Catalog)
			if err != nil {
				t.Fatalf("%s/%s: parse: %v\nSQL: %s", w.Name, tmpl.Name, err, qsql)
			}
			res, err := eng.Execute(q)
			if err != nil {
				t.Fatalf("%s/%s: execute: %v\nSQL: %s", w.Name, tmpl.Name, err, qsql)
			}
			if res == nil {
				t.Fatalf("%s/%s: nil result", w.Name, tmpl.Name)
			}
		}
	}
}

func TestQueriesInstantiation(t *testing.T) {
	w := TPCH(0.002, 1)
	qs := w.Queries(20, 7)
	if len(qs) != 20 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if !strings.Contains(q, "ERROR WITHIN 10%") {
			t.Fatalf("missing accuracy clause: %s", q)
		}
	}
	// Deterministic for equal seeds, varying across seeds.
	qs2 := w.Queries(20, 7)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("instantiation must be deterministic per seed")
		}
	}
	if w.Queries(5, 8)[0] == qs[0] && w.Queries(5, 9)[0] == qs[0] {
		t.Fatal("different seeds should vary queries")
	}
}

func TestQueriesFromTemplates(t *testing.T) {
	w := TPCH(0.002, 1)
	qs := w.QueriesFromTemplates([]string{"q6"}, 5, 3)
	if len(qs) != 5 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if !strings.Contains(q, "l_discount") {
			t.Fatalf("not a q6 instance: %s", q)
		}
	}
	if got := w.QueriesFromTemplates([]string{"nope"}, 5, 3); got != nil {
		t.Fatal("unknown template must return nil")
	}
	if _, err := w.Template("q6"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Template("zzz"); err == nil {
		t.Fatal("want unknown template error")
	}
}

func TestInstacartTableIShapes(t *testing.T) {
	w := Instacart(0.02, 3)
	sketch, sample := 0, 0
	for _, tmpl := range w.Templates {
		switch tmpl.Kind {
		case "sketch":
			sketch++
		case "sample":
			sample++
		}
	}
	if sketch != 4 || sample != 4 {
		t.Fatalf("Table I = %d sketch + %d sample templates, want 4+4", sketch, sample)
	}
	// Product popularity must be heavy-tailed (drives sketch usefulness).
	op, _ := w.Catalog.Table("orderproducts")
	st := op.Stats()
	i := op.Schema().Index("orderproducts.op_product_id")
	if !st.Columns[i].Skewed {
		t.Fatal("op_product_id must be skewed")
	}
}

func TestTPCDSShape(t *testing.T) {
	w := TPCDS(0.002, 2)
	if len(w.Templates) != 20 {
		t.Fatalf("templates = %d, want 20", len(w.Templates))
	}
	ss, _ := w.Catalog.Table("store_sales")
	dd, _ := w.Catalog.Table("date_dim")
	if ss.NumRows() < dd.NumRows() {
		t.Fatal("fact must dominate dimensions")
	}
}
