package workload

import (
	"fmt"
	"math/rand"

	"github.com/tasterdb/taster/internal/storage"
)

// TPCH generates a TPC-H-shaped dataset at the given scale factor (sf=1 ≈
// the standard 6M-row lineitem; the experiments default to laptop scale)
// and the 18 approximable query templates the paper uses (all 22 minus Q2,
// Q4, Q21, Q22 — §VI footnote 3).
//
// Substitutions vs. real TPC-H (documented per DESIGN.md §2): dates are
// integer day offsets from 1992-01-01, expression aggregates like
// SUM(l_extendedprice·(1−l_discount)) become single-column aggregates, and
// queries with subqueries/HAVING are flattened to their aggregate core. The
// join/filter/group shapes — which drive synopsis choice and reuse — are
// preserved.
func TPCH(sf float64, seed int64) *Workload {
	if sf <= 0 {
		sf = 0.01
	}
	r := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()
	var rows int64

	nNation := len(nationNames)
	nSupp := maxRows(sf, 10000)
	nCust := maxRows(sf, 150000)
	nPart := maxRows(sf, 200000)
	nPartSupp := nPart * 4
	nOrders := maxRows(sf, 1500000)
	nLine := nOrders * 4

	// region
	rb := storage.NewBuilder("region", storage.Schema{
		{Name: "region.r_regionkey", Typ: storage.Int64},
		{Name: "region.r_name", Typ: storage.String},
	})
	for i, name := range regionNames {
		rb.Int(0, int64(i))
		rb.Str(1, name)
	}
	cat.Register(rb.Build(1))
	rows += int64(len(regionNames))

	// nation
	nb := storage.NewBuilder("nation", storage.Schema{
		{Name: "nation.n_nationkey", Typ: storage.Int64},
		{Name: "nation.n_name", Typ: storage.String},
		{Name: "nation.n_regionkey", Typ: storage.Int64},
	})
	for i, name := range nationNames {
		nb.Int(0, int64(i))
		nb.Str(1, name)
		nb.Int(2, int64(i%len(regionNames)))
	}
	cat.Register(nb.Build(1))
	rows += int64(nNation)

	// supplier
	sb := storage.NewBuilder("supplier", storage.Schema{
		{Name: "supplier.s_suppkey", Typ: storage.Int64},
		{Name: "supplier.s_nationkey", Typ: storage.Int64},
		{Name: "supplier.s_acctbal", Typ: storage.Float64},
	})
	for i := 0; i < nSupp; i++ {
		sb.Int(0, int64(i))
		sb.Int(1, int64(r.Intn(nNation)))
		sb.Float(2, r.Float64()*10000-1000)
	}
	cat.Register(sb.Build(2))
	rows += int64(nSupp)

	// customer
	cb := storage.NewBuilder("customer", storage.Schema{
		{Name: "customer.c_custkey", Typ: storage.Int64},
		{Name: "customer.c_nationkey", Typ: storage.Int64},
		{Name: "customer.c_mktsegment", Typ: storage.String},
		{Name: "customer.c_acctbal", Typ: storage.Float64},
	})
	for i := 0; i < nCust; i++ {
		cb.Int(0, int64(i))
		cb.Int(1, int64(r.Intn(nNation)))
		cb.Str(2, pick(r, segments))
		cb.Float(3, r.Float64()*10000-1000)
	}
	cat.Register(cb.Build(2))
	rows += int64(nCust)

	// part
	pb := storage.NewBuilder("part", storage.Schema{
		{Name: "part.p_partkey", Typ: storage.Int64},
		{Name: "part.p_brand", Typ: storage.String},
		{Name: "part.p_type", Typ: storage.String},
		{Name: "part.p_size", Typ: storage.Int64},
		{Name: "part.p_container", Typ: storage.String},
		{Name: "part.p_retailprice", Typ: storage.Float64},
	})
	for i := 0; i < nPart; i++ {
		pb.Int(0, int64(i))
		pb.Str(1, pick(r, brands))
		pb.Str(2, pick(r, partTypes))
		pb.Int(3, int64(r.Intn(50)+1))
		pb.Str(4, pick(r, containers))
		pb.Float(5, 900+r.Float64()*1100)
	}
	cat.Register(pb.Build(2))
	rows += int64(nPart)

	// partsupp
	psb := storage.NewBuilder("partsupp", storage.Schema{
		{Name: "partsupp.ps_partkey", Typ: storage.Int64},
		{Name: "partsupp.ps_suppkey", Typ: storage.Int64},
		{Name: "partsupp.ps_availqty", Typ: storage.Int64},
		{Name: "partsupp.ps_supplycost", Typ: storage.Float64},
	})
	for i := 0; i < nPartSupp; i++ {
		psb.Int(0, int64(i%nPart))
		psb.Int(1, int64(r.Intn(nSupp)))
		psb.Int(2, int64(r.Intn(9999)+1))
		psb.Float(3, 1+r.Float64()*999)
	}
	cat.Register(psb.Build(4))
	rows += int64(nPartSupp)

	// orders (dates span ~2400 days like 1992..1998)
	ob := storage.NewBuilder("orders", storage.Schema{
		{Name: "orders.o_orderkey", Typ: storage.Int64},
		{Name: "orders.o_custkey", Typ: storage.Int64},
		{Name: "orders.o_orderstatus", Typ: storage.String},
		{Name: "orders.o_totalprice", Typ: storage.Float64},
		{Name: "orders.o_orderdate", Typ: storage.Int64},
		{Name: "orders.o_orderpriority", Typ: storage.String},
	})
	for i := 0; i < nOrders; i++ {
		ob.Int(0, int64(i))
		ob.Int(1, int64(r.Intn(nCust)))
		ob.Str(2, pick(r, orderStatuses))
		ob.Float(3, 1000+r.Float64()*450000)
		ob.Int(4, int64(r.Intn(2400)))
		ob.Str(5, pick(r, priorities))
	}
	cat.Register(ob.Build(4))
	rows += int64(nOrders)

	// lineitem
	lb := storage.NewBuilder("lineitem", storage.Schema{
		{Name: "lineitem.l_orderkey", Typ: storage.Int64},
		{Name: "lineitem.l_partkey", Typ: storage.Int64},
		{Name: "lineitem.l_suppkey", Typ: storage.Int64},
		{Name: "lineitem.l_quantity", Typ: storage.Float64},
		{Name: "lineitem.l_extendedprice", Typ: storage.Float64},
		{Name: "lineitem.l_discount", Typ: storage.Float64},
		{Name: "lineitem.l_returnflag", Typ: storage.String},
		{Name: "lineitem.l_linestatus", Typ: storage.String},
		{Name: "lineitem.l_shipdate", Typ: storage.Int64},
		{Name: "lineitem.l_shipmode", Typ: storage.String},
	})
	for i := 0; i < nLine; i++ {
		qty := float64(r.Intn(50) + 1)
		lb.Int(0, int64(i/4)) // ~4 lines per order
		lb.Int(1, int64(r.Intn(nPart)))
		lb.Int(2, int64(r.Intn(nSupp)))
		lb.Float(3, qty)
		lb.Float(4, qty*(900+r.Float64()*1100))
		lb.Float(5, float64(r.Intn(11))/100)
		lb.Str(6, pick(r, returnFlags))
		lb.Str(7, pick(r, lineStatuses))
		lb.Int(8, int64(r.Intn(2400)))
		lb.Str(9, pick(r, shipmodes))
	}
	cat.Register(lb.Build(8))
	rows += int64(nLine)

	return &Workload{
		Name:      "tpch",
		Catalog:   cat,
		Templates: tpchTemplates(),
		TotalRows: rows,
	}
}

func maxRows(sf float64, base int) int {
	n := int(sf * float64(base))
	if n < 10 {
		n = 10
	}
	return n
}

// date returns a random day offset with at least span days of headroom.
func date(r *rand.Rand, span int) int { return r.Intn(2400 - span) }

// tpchTemplates returns the paper's 18 approximable templates, with Fig. 6
// epochs: (1) q6,q14,q17  (2) q5,q8,q11,q12  (3) q1,q3,q16,q19
// (4) q7,q9,q13,q18.
func tpchTemplates() []Template {
	return []Template{
		{Name: "q1", Epoch: 3, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount), COUNT(*) FROM lineitem WHERE l_shipdate <= %d GROUP BY l_returnflag, l_linestatus`, 2300+r.Intn(100))
		}},
		{Name: "q3", Epoch: 3, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT o_orderpriority, SUM(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey JOIN customer ON o_custkey = c_custkey WHERE c_mktsegment = '%s' AND o_orderdate < %d GROUP BY o_orderpriority`, pick(r, segments), 1000+date(r, 1400))
		}},
		{Name: "q5", Epoch: 2, Instantiate: func(r *rand.Rand) string {
			d := date(r, 365)
			return fmt.Sprintf(`SELECT n_name, SUM(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey JOIN customer ON o_custkey = c_custkey JOIN nation ON c_nationkey = n_nationkey WHERE o_orderdate BETWEEN %d AND %d GROUP BY n_name`, d, d+365)
		}},
		{Name: "q6", Epoch: 1, Instantiate: func(r *rand.Rand) string {
			d := date(r, 365)
			disc := float64(r.Intn(8)) / 100
			return fmt.Sprintf(`SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate BETWEEN %d AND %d AND l_discount >= %.2f AND l_quantity < %d`, d, d+365, disc, 24+r.Intn(2))
		}},
		{Name: "q7", Epoch: 4, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT n_name, SUM(l_extendedprice) FROM lineitem JOIN supplier ON l_suppkey = s_suppkey JOIN nation ON s_nationkey = n_nationkey WHERE l_shipdate >= %d GROUP BY n_name`, date(r, 730))
		}},
		{Name: "q8", Epoch: 2, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT o_orderpriority, AVG(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey JOIN part ON l_partkey = p_partkey WHERE p_type = '%s' GROUP BY o_orderpriority`, pick(r, partTypes))
		}},
		{Name: "q9", Epoch: 4, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT n_name, SUM(ps_supplycost) FROM partsupp JOIN supplier ON ps_suppkey = s_suppkey JOIN nation ON s_nationkey = n_nationkey WHERE ps_availqty > %d GROUP BY n_name`, 1000+r.Intn(5000))
		}},
		{Name: "q10", Instantiate: func(r *rand.Rand) string {
			d := date(r, 90)
			return fmt.Sprintf(`SELECT n_name, SUM(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey JOIN customer ON o_custkey = c_custkey JOIN nation ON c_nationkey = n_nationkey WHERE l_returnflag = 'R' AND o_orderdate >= %d GROUP BY n_name`, d)
		}},
		{Name: "q11", Epoch: 2, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT s_nationkey, SUM(ps_supplycost) FROM partsupp JOIN supplier ON ps_suppkey = s_suppkey WHERE ps_availqty < %d GROUP BY s_nationkey`, 2000+r.Intn(6000))
		}},
		{Name: "q12", Epoch: 2, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT l_shipmode, COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE l_shipmode IN ('%s', '%s') AND l_shipdate >= %d GROUP BY l_shipmode`, pick(r, shipmodes), pick(r, shipmodes), date(r, 365))
		}},
		{Name: "q13", Epoch: 4, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT c_mktsegment, COUNT(*) FROM orders JOIN customer ON o_custkey = c_custkey WHERE o_totalprice > %d GROUP BY c_mktsegment`, 10000+r.Intn(100000))
		}},
		{Name: "q14", Epoch: 1, Instantiate: func(r *rand.Rand) string {
			d := date(r, 30)
			return fmt.Sprintf(`SELECT p_brand, SUM(l_extendedprice) FROM lineitem JOIN part ON l_partkey = p_partkey WHERE l_shipdate BETWEEN %d AND %d GROUP BY p_brand`, d, d+30)
		}},
		{Name: "q15", Instantiate: func(r *rand.Rand) string {
			d := date(r, 90)
			return fmt.Sprintf(`SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate BETWEEN %d AND %d GROUP BY l_suppkey`, d, d+90)
		}},
		{Name: "q16", Epoch: 3, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT p_brand, COUNT(*) FROM partsupp JOIN part ON ps_partkey = p_partkey WHERE p_size IN (%d, %d, %d) GROUP BY p_brand`, 1+r.Intn(15), 16+r.Intn(15), 31+r.Intn(15))
		}},
		{Name: "q17", Epoch: 1, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT AVG(l_quantity), SUM(l_extendedprice) FROM lineitem JOIN part ON l_partkey = p_partkey WHERE p_brand = '%s' AND p_container = '%s'`, pick(r, brands), pick(r, containers))
		}},
		{Name: "q18", Epoch: 4, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT o_orderpriority, SUM(l_quantity) FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE o_totalprice > %d GROUP BY o_orderpriority`, 50000+r.Intn(250000))
		}},
		{Name: "q19", Epoch: 3, Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT SUM(l_extendedprice) FROM lineitem JOIN part ON l_partkey = p_partkey WHERE p_container = '%s' AND l_quantity BETWEEN %d AND %d`, pick(r, containers), 1+r.Intn(10), 20+r.Intn(20))
		}},
		{Name: "q20", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT ps_suppkey, SUM(ps_availqty) FROM partsupp JOIN part ON ps_partkey = p_partkey WHERE p_type = '%s' GROUP BY ps_suppkey`, pick(r, partTypes))
		}},
	}
}

// TPCHEpoch returns the template names of the given Fig. 6 epoch (1..4).
func TPCHEpoch(epoch int) []string {
	var out []string
	for _, t := range tpchTemplates() {
		if t.Epoch == epoch {
			out = append(out, t.Name)
		}
	}
	return out
}
