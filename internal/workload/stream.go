package workload

import (
	"fmt"
	"math/rand"

	"github.com/tasterdb/taster/internal/storage"
)

// StreamOp is one step of a streaming (online-ingestion) workload: exactly
// one of SQL or Append is set.
type StreamOp struct {
	// SQL is a query to execute (with the standard accuracy clause).
	SQL string
	// Append is a batch of rows to ingest into Append.Table.
	Append *AppendBatch
}

// AppendBatch is a pre-generated ingestion batch.
type AppendBatch struct {
	Table string
	Rows  *storage.Table
}

// StreamConfig shapes a streaming workload.
type StreamConfig struct {
	// Queries is the number of query operations in the stream.
	Queries int
	// AppendEvery inserts one append batch after every AppendEvery queries
	// (default 5).
	AppendEvery int
	// BatchRows is the row count of each append batch; when 0, BatchFrac
	// of the target table is used instead.
	BatchRows int
	// BatchFrac sizes batches as a fraction of the target table's rows at
	// generation time (default 0.02), used when BatchRows is 0.
	BatchFrac float64
	// Table is the relation receiving appends; empty selects the largest
	// table in the catalog (the fact table of the paper's workloads).
	Table string
	Seed  int64
}

// Stream generates a deterministic interleaving of queries and append
// batches — the scenario class the static Queries sequence cannot express.
// Batch rows are synthesized by resampling rows of the target table's
// current contents (value distributions are preserved, so pre- and
// post-append answers drift by realistic amounts rather than jumping).
// All batches are pre-generated from the snapshot taken now; the schema is
// append-stable so the batches remain valid as the engine ingests them.
func (w *Workload) Stream(cfg StreamConfig) ([]StreamOp, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 50
	}
	if cfg.AppendEvery <= 0 {
		cfg.AppendEvery = 5
	}
	table := cfg.Table
	if table == "" {
		for _, n := range w.Catalog.Names() {
			t, err := w.Catalog.Table(n)
			if err != nil {
				continue
			}
			if table == "" {
				table = n
				continue
			}
			cur, _ := w.Catalog.Table(table)
			if t.NumRows() > cur.NumRows() || (t.NumRows() == cur.NumRows() && n < table) {
				table = n
			}
		}
	}
	src, err := w.Catalog.Table(table)
	if err != nil {
		return nil, fmt.Errorf("workload: stream: %w", err)
	}
	if src.NumRows() == 0 {
		return nil, fmt.Errorf("workload: stream: table %q is empty", table)
	}
	batchRows := cfg.BatchRows
	if batchRows <= 0 {
		frac := cfg.BatchFrac
		if frac <= 0 {
			frac = 0.02
		}
		batchRows = max(1, int(float64(src.NumRows())*frac))
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	var ops []StreamOp
	for q := 0; q < cfg.Queries; q++ {
		t := w.Templates[r.Intn(len(w.Templates))]
		ops = append(ops, StreamOp{SQL: t.Instantiate(r) + " ERROR WITHIN 10% AT CONFIDENCE 95%"})
		// No trailing append after the final query: nothing would observe it.
		if (q+1)%cfg.AppendEvery == 0 && q+1 < cfg.Queries {
			ops = append(ops, StreamOp{Append: &AppendBatch{
				Table: table,
				Rows:  ResampleBatch(src, batchRows, r),
			}})
		}
	}
	return ops, nil
}

// ResampleBatch builds a batch of n rows drawn uniformly (with replacement)
// from the table's current rows — a schema-agnostic row synthesizer for
// append streams over any workload.
func ResampleBatch(src *storage.Table, n int, r *rand.Rand) *storage.Table {
	b := storage.NewBuilder(src.Name, src.Schema())
	for i := 0; i < n; i++ {
		row := r.Intn(src.NumRows())
		for c := 0; c < len(src.Schema()); c++ {
			b.CopyFrom(c, src.Column(c), row)
		}
	}
	return b.Build(1)
}
