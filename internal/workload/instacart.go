package workload

import (
	"fmt"
	"math/rand"

	"github.com/tasterdb/taster/internal/storage"
)

// instacart dimension vocabularies (subset of the real dataset's values).
var (
	departmentNames = []string{"produce", "dairy eggs", "snacks", "beverages", "frozen", "pantry", "bakery", "canned goods", "deli", "dry goods pasta", "household", "meat seafood", "breakfast", "personal care", "babies", "international", "alcohol", "pets", "missing", "other", "bulk"}
	aisleNames      = []string{"fresh fruits", "fresh vegetables", "packaged cheese", "yogurt", "milk", "water seltzer", "chips pretzels", "ice cream", "soft drinks", "bread", "refrigerated", "frozen meals", "eggs", "cereal", "candy chocolate", "lunch meat", "soup", "baby food", "dog food", "wine"}
)

// Instacart generates the online-grocery micro-benchmark (paper §VI, [1]):
// orders, orderproducts (the fact table), products, aisles and departments,
// plus the eight Table-I templates — four sketch-amenable (grouping on the
// probe side / join key) and four sample-amenable (grouping on fact
// columns). scale=1 ≈ 200k orderproduct rows; the paper scales the real
// dataset 100×, we scale down instead and let the cost model normalize.
func Instacart(scale float64, seed int64) *Workload {
	if scale <= 0 {
		scale = 0.1
	}
	r := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()
	var rows int64

	nDepts := len(departmentNames)
	nAisles := len(aisleNames)
	nProducts := maxRows(scale, 20000)
	nOrders := maxRows(scale, 50000)
	// The real dataset averages ~10 items per order; that fanout is what
	// makes a per-order sketch far smaller than the fact table.
	nOrderProducts := nOrders * 10

	db := storage.NewBuilder("departments", storage.Schema{
		{Name: "departments.department_id", Typ: storage.Int64},
		{Name: "departments.d_department", Typ: storage.String},
	})
	for i, n := range departmentNames {
		db.Int(0, int64(i))
		db.Str(1, n)
	}
	cat.Register(db.Build(1))
	rows += int64(nDepts)

	ab := storage.NewBuilder("aisles", storage.Schema{
		{Name: "aisles.aisle_id", Typ: storage.Int64},
		{Name: "aisles.a_aisle", Typ: storage.String},
	})
	for i, n := range aisleNames {
		ab.Int(0, int64(i))
		ab.Str(1, n)
	}
	cat.Register(ab.Build(1))
	rows += int64(nAisles)

	pb := storage.NewBuilder("products", storage.Schema{
		{Name: "products.product_id", Typ: storage.Int64},
		{Name: "products.p_product_name", Typ: storage.String},
		{Name: "products.p_aisle_id", Typ: storage.Int64},
		{Name: "products.p_department_id", Typ: storage.Int64},
	})
	for i := 0; i < nProducts; i++ {
		pb.Int(0, int64(i))
		pb.Str(1, fmt.Sprintf("product_%d", i%2000))
		pb.Int(2, int64(r.Intn(nAisles)))
		pb.Int(3, int64(r.Intn(nDepts)))
	}
	cat.Register(pb.Build(2))
	rows += int64(nProducts)

	ob := storage.NewBuilder("orders", storage.Schema{
		{Name: "orders.order_id", Typ: storage.Int64},
		{Name: "orders.user_id", Typ: storage.Int64},
		{Name: "orders.o_order_dow", Typ: storage.Int64},
		{Name: "orders.o_order_hod", Typ: storage.Int64},
	})
	for i := 0; i < nOrders; i++ {
		ob.Int(0, int64(i))
		ob.Int(1, int64(r.Intn(nOrders/10+1)))
		ob.Int(2, int64(r.Intn(7)))
		// Hour-of-day skews toward daytime like the real dataset.
		ob.Int(3, int64(8+r.Intn(14)))
	}
	cat.Register(ob.Build(4))
	rows += int64(nOrders)

	opb := storage.NewBuilder("orderproducts", storage.Schema{
		{Name: "orderproducts.op_order_id", Typ: storage.Int64},
		{Name: "orderproducts.op_product_id", Typ: storage.Int64},
		{Name: "orderproducts.op_reordered", Typ: storage.Int64},
	})
	for i := 0; i < nOrderProducts; i++ {
		opb.Int(0, int64(i/10))
		// Product popularity is heavy-tailed: square the uniform draw.
		f := r.Float64()
		opb.Int(1, int64(f*f*float64(nProducts)))
		opb.Int(2, int64(r.Intn(2)))
	}
	cat.Register(opb.Build(8))
	rows += int64(nOrderProducts)

	// Table I, verbatim shapes. Variables *day*, *hour*, *productname*,
	// *department*, *aislename* are randomly set per instantiation.
	templates := []Template{
		{Name: "sketch-1", Kind: "sketch", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT order_id, COUNT(*) FROM orderproducts JOIN orders ON op_order_id = order_id WHERE o_order_dow = %d AND o_order_hod > %d GROUP BY order_id`, r.Intn(7), 8+r.Intn(12))
		}},
		{Name: "sketch-2", Kind: "sketch", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT product_id, COUNT(*) FROM orderproducts JOIN products ON op_product_id = product_id WHERE p_product_name = 'product_%d' GROUP BY product_id`, r.Intn(2000))
		}},
		{Name: "sketch-3", Kind: "sketch", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT product_id, COUNT(*) FROM orderproducts JOIN products ON op_product_id = product_id JOIN departments ON p_department_id = department_id WHERE d_department = '%s' GROUP BY product_id`, pick(r, departmentNames))
		}},
		{Name: "sketch-4", Kind: "sketch", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT product_id, COUNT(*) FROM orderproducts JOIN products ON op_product_id = product_id JOIN aisles ON p_aisle_id = aisle_id WHERE a_aisle = '%s' GROUP BY product_id`, pick(r, aisleNames))
		}},
		{Name: "sample-1", Kind: "sample", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT op_product_id, COUNT(*) FROM orderproducts JOIN orders ON op_order_id = order_id WHERE o_order_dow = %d AND o_order_hod > %d GROUP BY op_product_id`, r.Intn(7), 8+r.Intn(12))
		}},
		{Name: "sample-2", Kind: "sample", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT op_order_id, COUNT(*) FROM orderproducts JOIN products ON op_product_id = product_id WHERE p_product_name = 'product_%d' GROUP BY op_order_id`, r.Intn(2000))
		}},
		{Name: "sample-3", Kind: "sample", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT op_order_id, COUNT(*) FROM orderproducts JOIN products ON op_product_id = product_id JOIN departments ON p_department_id = department_id WHERE d_department = '%s' GROUP BY op_order_id`, pick(r, departmentNames))
		}},
		{Name: "sample-4", Kind: "sample", Instantiate: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT op_order_id, COUNT(*) FROM orderproducts JOIN products ON op_product_id = product_id JOIN aisles ON p_aisle_id = aisle_id WHERE a_aisle = '%s' GROUP BY op_order_id`, pick(r, aisleNames))
		}},
	}

	return &Workload{Name: "instacart", Catalog: cat, Templates: templates, TotalRows: rows}
}
