// Package engine is the locksafe fixture: a miniature Engine whose
// tuneMu must be unreachable from Execute and never taken under the
// finer mu, with //taster:locked marking the sanctioned serialization
// point.
package engine

import "sync"

// Engine mirrors the real engine's two-lock shape: mu is a finer
// structure lock, tuneMu the outermost tuning lock.
type Engine struct {
	mu     sync.Mutex
	tuneMu sync.Mutex
	n      int
}

// Bad: Execute reaches an unsuppressed tuneMu acquisition two hops down.
func (e *Engine) Execute() int {
	if e.n > 0 {
		return e.ExecuteSync()
	}
	return e.helper()
}

func (e *Engine) helper() int {
	return e.admit()
}

func (e *Engine) admit() int {
	e.tuneMu.Lock() // want `tuneMu acquired on a path reachable from .*Execute → helper → admit`
	defer e.tuneMu.Unlock()
	return e.n
}

// Good: the synchronous-mode serialization point, annotated for audit.
// The suppression keeps this acquisition off Execute's violation list
// even though Execute calls it.
func (e *Engine) ExecuteSync() int {
	//taster:locked synchronous mode is the documented serialization point
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	return e.n
}

// Bad: tuneMu taken while the finer mu is held — inverted lock order.
func (e *Engine) badOrder() {
	e.mu.Lock()
	e.tuneMu.Lock() // want `tuneMu acquired while holding e.mu`
	e.n++
	e.tuneMu.Unlock()
	e.mu.Unlock()
}

func (e *Engine) retune() {
	e.tuneMu.Lock()
	e.n = 0
	e.tuneMu.Unlock()
}

// Bad: calling into a tuneMu-acquiring helper while holding the finer mu
// inverts the order one level removed.
func (e *Engine) callUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retune() // want `call to retune while holding e.mu`
}

// Good: the finer lock is released before tuneMu is taken.
func (e *Engine) sequential() {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
	e.tuneMu.Lock()
	e.n = 0
	e.tuneMu.Unlock()
}

// Worker proves root scoping: an Execute on a non-Engine receiver may
// own its own tuneMu without tripping the reachability rule.
type Worker struct {
	tuneMu sync.Mutex
	w      int
}

// Good: not an Engine.Execute, so not a reachability root.
func (w *Worker) Execute() int {
	w.tuneMu.Lock()
	defer w.tuneMu.Unlock()
	return w.w
}
