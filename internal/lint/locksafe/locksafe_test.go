package locksafe_test

import (
	"testing"

	"github.com/tasterdb/taster/internal/lint/analysistest"
	"github.com/tasterdb/taster/internal/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer)
}
