// Package locksafe proves two locking invariants of the serving engine:
//
//  1. Nothing reachable from Engine.Execute acquires tuneMu. The
//     asynchronous serving path is lock-free by design — tuning state
//     arrives via the RCU-published snapshot — and a tuneMu acquisition
//     smuggled into the call tree reintroduces the serialization point
//     PR 4 removed. The deliberate, mode-gated exceptions (the
//     synchronous-mode inline round) carry a `//taster:locked <why>`
//     annotation, which turns every suppression into an audit point.
//
//  2. tuneMu is never acquired while any finer lock is held. tuneMu is
//     the engine's outermost lock; taking it under a warehouse, catalog,
//     metadata-store or plan-cache mutex inverts the lock order and is a
//     deadlock waiting for the opposite interleaving.
//
// The pass builds a static call graph over the whole module (direct calls
// and method calls resolved through the type checker; dynamic dispatch
// through interfaces and function values is out of scope and documented as
// such), finds every `<x>.tuneMu.Lock()` / `.RLock()` site, and walks the
// graph from Engine.Execute. The lock-order rule replays each function's
// lock/unlock/call events in source order, tracking the held set; calls
// into functions that transitively acquire tuneMu count as acquisitions at
// the call site.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/tasterdb/taster/internal/lint"
)

// Analyzer is the locksafe pass.
var Analyzer = &lint.Analyzer{
	Name:       "locksafe",
	Doc:        "prove Engine.Execute never reaches a tuneMu acquisition and tuneMu is never taken under a finer lock",
	RunProgram: run,
}

// mutexName is the field name of the engine-wide tuning mutex.
const mutexName = "tuneMu"

// funcInfo is one declared function's locking-relevant facts.
type funcInfo struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *lint.Package
	file    *ast.File
	callees []calleeRef
	// tuneSites are unsuppressed tuneMu acquisitions in this body.
	tuneSites []token.Pos
	// events are lock/unlock/call occurrences in source order, for the
	// lock-order replay.
	events []lockEvent
}

type calleeRef struct {
	fn  *types.Func
	pos token.Pos
}

type lockEvent struct {
	pos token.Pos
	// kind: "lock", "unlock", "call"
	kind string
	// mutex is the rendered owner expression ("e.tuneMu", "m.mu"); empty
	// for calls.
	mutex string
	// deferred marks `defer x.Unlock()`, which releases at return and so
	// never shrinks the held set mid-body.
	deferred bool
	// callee is set for kind "call".
	callee *types.Func
	// suppressed marks sites annotated //taster:locked.
	suppressed bool
}

func run(pass *lint.ProgramPass) {
	funcs := collect(pass)

	// Transitive closure: which functions acquire tuneMu, directly or
	// through any static callee. Suppressed sites still count for the
	// lock-order rule (an annotated acquisition is still an acquisition)
	// but not for reachability reporting.
	acquires := map[*types.Func]bool{}
	changed := true
	for changed {
		changed = false
		for _, fi := range funcs {
			if acquires[fi.fn] {
				continue
			}
			direct := len(fi.tuneSites) > 0 || hasSuppressedTune(fi)
			if direct {
				acquires[fi.fn] = true
				changed = true
				continue
			}
			for _, c := range fi.callees {
				if acquires[c.fn] {
					acquires[fi.fn] = true
					changed = true
					break
				}
			}
		}
	}

	reportReachability(pass, funcs)
	reportLockOrder(pass, funcs, acquires)
}

func hasSuppressedTune(fi *funcInfo) bool {
	for _, ev := range fi.events {
		if ev.kind == "lock" && isTune(ev.mutex) && ev.suppressed {
			return true
		}
	}
	return false
}

func isTune(mutex string) bool {
	return mutex == mutexName || strings.HasSuffix(mutex, "."+mutexName)
}

// collect builds per-function facts for every declared function in the
// module.
func collect(pass *lint.ProgramPass) map[*types.Func]*funcInfo {
	funcs := make(map[*types.Func]*funcInfo)
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{fn: fn, decl: fd, pkg: pkg, file: file}
				scanBody(pass, pkg, file, fd, fi)
				funcs[fn] = fi
			}
		}
	}
	return funcs
}

// scanBody records lock events and call edges of one function body in
// source order.
func scanBody(pass *lint.ProgramPass, pkg *lint.Package, file *ast.File, fd *ast.FuncDecl, fi *funcInfo) {
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if isSel {
			if m, lockish := lockMethod(pkg, sel); lockish {
				owner := types.ExprString(sel.X)
				ev := lockEvent{pos: call.Pos(), mutex: owner, deferred: deferred[call]}
				switch m {
				case "Lock", "RLock":
					ev.kind = "lock"
					ev.suppressed = pass.Prog.Annotated(file, call, "taster:locked")
					if isTune(owner) && !ev.suppressed {
						fi.tuneSites = append(fi.tuneSites, call.Pos())
					}
				case "Unlock", "RUnlock":
					ev.kind = "unlock"
				}
				fi.events = append(fi.events, ev)
				return true
			}
		}
		// Static call edge.
		var callee *types.Func
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee, _ = pkg.Info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
		}
		if callee != nil {
			fi.callees = append(fi.callees, calleeRef{fn: callee, pos: call.Pos()})
			fi.events = append(fi.events, lockEvent{
				pos: call.Pos(), kind: "call", callee: callee,
				deferred:   deferred[call],
				suppressed: pass.Prog.Annotated(file, call, "taster:locked"),
			})
		}
		return true
	})
	sort.SliceStable(fi.events, func(i, j int) bool { return fi.events[i].pos < fi.events[j].pos })
}

// lockMethod reports whether sel is a Lock/RLock/Unlock/RUnlock method
// selection on a sync.Mutex or sync.RWMutex (direct or embedded).
func lockMethod(pkg *lint.Package, sel *ast.SelectorExpr) (string, bool) {
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	return name, true
}

// reportReachability walks the call graph from every Engine.Execute and
// reports unsuppressed tuneMu acquisitions it can reach, with the call
// chain in the message.
func reportReachability(pass *lint.ProgramPass, funcs map[*types.Func]*funcInfo) {
	var roots []*types.Func
	for fn, fi := range funcs {
		if fn.Name() != "Execute" {
			continue
		}
		if recvNamed(fi.decl) == "Engine" {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	for _, root := range roots {
		parent := map[*types.Func]*types.Func{root: nil}
		queue := []*types.Func{root}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			fi := funcs[fn]
			if fi == nil {
				continue // declared outside the module (stdlib)
			}
			for _, pos := range fi.tuneSites {
				pass.Reportf(pos,
					"%s acquired on a path reachable from %s (%s): the serving path must stay lock-free; gate the acquisition off Execute's call tree or annotate //taster:locked <why>",
					mutexName, root.FullName(), chain(parent, fn))
			}
			for _, c := range fi.callees {
				if _, seen := parent[c.fn]; seen {
					continue
				}
				parent[c.fn] = fn
				queue = append(queue, c.fn)
			}
		}
	}
}

// chain renders the BFS path root → … → fn.
func chain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, f.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// reportLockOrder replays each function's events and flags tuneMu
// acquisitions (direct, or via a call into a transitively-acquiring
// function) while a finer lock is held.
func reportLockOrder(pass *lint.ProgramPass, funcs map[*types.Func]*funcInfo, acquires map[*types.Func]bool) {
	fns := make([]*types.Func, 0, len(funcs))
	for fn := range funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return funcs[fns[i]].decl.Pos() < funcs[fns[j]].decl.Pos() })

	for _, fn := range fns {
		fi := funcs[fn]
		held := map[string]bool{} // finer mutexes currently held
		for _, ev := range fi.events {
			switch ev.kind {
			case "lock":
				if isTune(ev.mutex) {
					if len(held) > 0 && !ev.suppressed {
						pass.Reportf(ev.pos,
							"%s acquired while holding %s: %s is the engine's outermost lock and taking it under a finer lock inverts the lock order (deadlock risk)",
							mutexName, heldList(held), mutexName)
					}
				} else if !ev.deferred {
					held[ev.mutex] = true
				}
			case "unlock":
				if !ev.deferred && !isTune(ev.mutex) {
					delete(held, ev.mutex)
				}
			case "call":
				if len(held) > 0 && acquires[ev.callee] && !ev.deferred && !ev.suppressed {
					pass.Reportf(ev.pos,
						"call to %s while holding %s: the callee (transitively) acquires %s, inverting the lock order (deadlock risk)",
						ev.callee.Name(), heldList(held), mutexName)
				}
			}
		}
	}
}

func heldList(held map[string]bool) string {
	var names []string
	for m := range held {
		names = append(names, m)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// recvNamed returns the name of a method's receiver type, or "".
func recvNamed(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
