package detrand_test

import (
	"testing"

	"github.com/tasterdb/taster/internal/lint/analysistest"
	"github.com/tasterdb/taster/internal/lint/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer)
}
