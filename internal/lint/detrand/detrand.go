// Package detrand flags nondeterministic inputs — wall-clock reads and the
// global math/rand generator — inside taster's determinism-critical
// packages (exec, planner, tuner, synopses, storage, expr).
//
// The engine's headline property is byte-identical answers at any worker
// count, tiling, cache state or restart. That only holds because every
// random choice derives from a plan-derived split seed and no plan, cost
// or synopsis decision reads the clock. A single time.Now() in a cost
// model or an unseeded rand.Intn in a sampler silently breaks the
// differential tests in ways that may not reproduce under test workloads,
// so the rule is enforced mechanically: wall-clock time must be injected
// by the caller (internal/core owns the clock), and RNGs must be
// constructed from an explicit seed threaded down from the plan.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/tasterdb/taster/internal/lint"
)

// Analyzer is the detrand pass.
var Analyzer = &lint.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock reads and global math/rand in determinism-critical packages",
	Run:  run,
}

// criticalPkgs are the package base names whose outputs feed query
// answers, plan choice or synopsis contents.
var criticalPkgs = map[string]bool{
	"exec": true, "planner": true, "tuner": true,
	"synopses": true, "storage": true, "expr": true,
}

// forbiddenTime are the time-package functions that read the wall clock.
// (time.Duration arithmetic and timer types are fine; it is the ambient
// "now" that breaks reproducibility.)
var forbiddenTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand and math/rand/v2 functions that build
// an explicitly seeded generator — the sanctioned way to get randomness.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

// clockMethods are the obs.Clock reads. Unlike raw time.Now they are
// injectable (Frozen under Synchronous), but a clock reading inside a
// critical package is still a determinism hazard the moment its value
// feeds a decision, so every call site must carry a //taster:clock
// annotation justifying why the reading is answer-neutral.
var clockMethods = map[string]bool{"Now": true, "Since": true}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func run(pass *lint.Pass) {
	if base := pkgBase(pass.Pkg.Path); !criticalPkgs[base] && !criticalPkgs[pass.Types.Name()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions matter here: methods on
			// rand.Rand or time.Time values are operating on state the
			// caller already injected. The one exception is the injected
			// obs.Clock: its Now/Since reads are sanctioned only when the
			// call site is annotated answer-neutral.
			if fn.Type().(*types.Signature).Recv() != nil {
				if clockMethods[fn.Name()] && pkgBase(fn.Pkg().Path()) == "obs" &&
					!pass.Prog.Annotated(f, sel, "taster:clock") {
					pass.Reportf(sel.Pos(),
						"unannotated obs clock read (%s) in determinism-critical package %s: annotate the call site with the clock marker and a justification that the reading never feeds an answer, plan or synopsis",
						fn.Name(), pass.Types.Name())
				}
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock read time.%s in determinism-critical package %s: inject the timestamp from the caller (internal/core owns the clock)",
						fn.Name(), pass.Types.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global math/rand RNG (rand.%s) in determinism-critical package %s: construct a generator from a plan-derived seed and thread it down",
						fn.Name(), pass.Types.Name())
				}
			}
			return true
		})
	}
}
