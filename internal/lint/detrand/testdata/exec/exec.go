// Package exec is a detrand fixture: its name places it in the
// determinism-critical set, so wall-clock reads and global RNG use must be
// flagged while injected clocks and seeded generators stay quiet.
package exec

import (
	"math/rand"
	"time"

	"fixture/obs"
)

// Bad: ambient wall-clock reads.
func wallClock() (int64, time.Duration) {
	now := time.Now()                // want `wall-clock read time.Now`
	elapsed := time.Since(now)       // want `wall-clock read time.Since`
	_ = time.Until(now.Add(elapsed)) // want `wall-clock read time.Until`
	return now.UnixNano(), elapsed
}

// Bad: the global math/rand generator is seeded from outside the plan.
func globalRNG() int {
	x := rand.Intn(10)                 // want `global math/rand RNG \(rand.Intn\)`
	f := rand.Float64()                // want `global math/rand RNG \(rand.Float64\)`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand RNG \(rand.Shuffle\)`
	return x + int(f)
}

// Good: a generator constructed from an explicit seed, threaded by value.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // method on the injected generator: fine
}

// Good: wall-clock time injected by the caller.
func injectedClock(now time.Time, budget time.Duration) bool {
	deadline := now.Add(budget)
	return deadline.After(now)
}

// Bad: reading the injected obs clock without the answer-neutrality
// annotation — observability timings must be declared harmless per site.
func obsClockUnannotated(c obs.Clock) time.Duration {
	start := c.Now()      // want `unannotated obs clock read \(Now\)`
	return c.Since(start) // want `unannotated obs clock read \(Since\)`
}

// Good: each read is annotated answer-neutral (interface and concrete).
func obsClockAnnotated(c obs.Clock) time.Duration {
	start := c.Now() //taster:clock trace timing only, never feeds an answer
	var f obs.Frozen
	_ = f.Now()           //taster:clock frozen stub, constant by construction
	return c.Since(start) //taster:clock trace timing only, never feeds an answer
}

// Bad: the clock annotation sanctions only the injected obs clock — a raw
// wall-clock read stays flagged no matter what the comment claims.
func rawClockAnnotated() int64 {
	return time.Now().UnixNano() //taster:clock not a valid excuse here // want `wall-clock read time.Now`
}
