// Package exec is a detrand fixture: its name places it in the
// determinism-critical set, so wall-clock reads and global RNG use must be
// flagged while injected clocks and seeded generators stay quiet.
package exec

import (
	"math/rand"
	"time"
)

// Bad: ambient wall-clock reads.
func wallClock() (int64, time.Duration) {
	now := time.Now()                // want `wall-clock read time.Now`
	elapsed := time.Since(now)       // want `wall-clock read time.Since`
	_ = time.Until(now.Add(elapsed)) // want `wall-clock read time.Until`
	return now.UnixNano(), elapsed
}

// Bad: the global math/rand generator is seeded from outside the plan.
func globalRNG() int {
	x := rand.Intn(10)                 // want `global math/rand RNG \(rand.Intn\)`
	f := rand.Float64()                // want `global math/rand RNG \(rand.Float64\)`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand RNG \(rand.Shuffle\)`
	return x + int(f)
}

// Good: a generator constructed from an explicit seed, threaded by value.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // method on the injected generator: fine
}

// Good: wall-clock time injected by the caller.
func injectedClock(now time.Time, budget time.Duration) bool {
	deadline := now.Add(budget)
	return deadline.After(now)
}
