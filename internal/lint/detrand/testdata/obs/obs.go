// Package obs is a fixture stub of the engine's observability package: an
// injectable clock whose Now/Since reads the detrand clock rule polices
// inside determinism-critical packages. Only the shape matters — the rule
// matches methods named Now/Since on types from a package whose base name
// is "obs".
package obs

import "time"

// Clock is the injectable time source.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

// Frozen is a Clock stuck at the zero time.
type Frozen struct{}

// Now implements Clock.
func (Frozen) Now() time.Time { return time.Time{} }

// Since implements Clock.
func (Frozen) Since(time.Time) time.Duration { return 0 }
