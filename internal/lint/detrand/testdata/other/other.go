// Package other is outside the determinism-critical set: the same
// constructs detrand flags in exec/planner/tuner/synopses/storage/expr
// must stay quiet here (the experiment driver and benchmarks are allowed
// to read the clock).
package other

import "time"

func timing() time.Duration {
	start := time.Now() // not critical: no finding
	return time.Since(start)
}
