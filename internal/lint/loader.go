package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader type-checks a module tree without the go/packages machinery: the
// target module has no external dependencies, so every import is either
// the standard library (resolved by the compiler's source importer, which
// works hermetically from GOROOT) or a path inside the module itself
// (resolved by mapping the import path onto a directory and recursing).
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	overlay map[string][]byte
	std     types.ImporterFrom
	pkgs    map[string]*Package // import path → loaded module package
	loading map[string]bool     // import cycle guard
	errs    []error
}

// Load parses and type-checks every non-test package under root (a module
// directory containing go.mod) and returns the program. overlay maps
// absolute file paths to replacement contents; the meta-tests use it to
// reintroduce seeded violations into real sources without touching disk.
func Load(root string, overlay map[string][]byte) (*Program, error) {
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint loader: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(modBytes), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint loader: no module line in %s/go.mod", root)
	}
	return LoadAsModule(root, modPath, overlay)
}

// LoadAsModule loads the package tree under root treating import paths
// beginning with modPath as module-internal. The analysistest harness uses
// it to load fixture trees that are not real modules.
func LoadAsModule(root, modPath string, overlay map[string][]byte) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint loader: source importer unavailable")
	}
	ld := &loader{
		fset: fset, root: abs, modPath: modPath, overlay: overlay,
		std: std, pkgs: make(map[string]*Package), loading: make(map[string]bool),
	}
	dirs, err := ld.packageDirs()
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := ld.load(ld.importPathFor(dir), dir); err != nil {
			ld.errs = append(ld.errs, err)
		}
	}
	if len(ld.errs) > 0 {
		msgs := make([]string, 0, len(ld.errs))
		for _, e := range ld.errs {
			msgs = append(msgs, e.Error())
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("lint loader: %s", strings.Join(msgs, "; "))
	}
	prog := &Program{Fset: fset}
	for _, pkg := range ld.pkgs {
		prog.Packages = append(prog.Packages, pkg)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// packageDirs walks the module for directories holding non-test Go files.
// testdata trees (analyzer fixtures with seeded violations) and VCS
// internals are skipped, matching the go tool's ./... expansion.
func (ld *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != ld.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

func (ld *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.modPath
	}
	return ld.modPath + "/" + filepath.ToSlash(rel)
}

func (ld *loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, ld.modPath), "/")
	return filepath.Join(ld.root, filepath.FromSlash(rel))
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded (memoized) from their directories, everything else is delegated
// to the stdlib source importer.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.load(path, ld.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks one module package, memoized by import path.
func (ld *loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := ld.pkgs[importPath]; ok {
		return pkg, nil
	}
	if ld.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	ld.loading[importPath] = true
	defer delete(ld.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		var src any
		if ld.overlay != nil {
			if b, ok := ld.overlay[full]; ok {
				src = b
			}
		}
		f, err := parser.ParseFile(ld.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.pkgs[importPath] = pkg
	return pkg, nil
}
