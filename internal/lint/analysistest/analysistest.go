// Package analysistest runs one analyzer over a golden fixture tree and
// compares its findings against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the in-repo framework.
//
// A fixture is a directory of Go packages (loaded as module "fixture", so
// fixtures may import each other as fixture/<sub>). A line expecting
// diagnostics carries a comment of the form
//
//	code() // want "regexp" "second regexp"
//
// and the test fails on any missing or unexpected finding. Every analyzer
// fixture must include at least one seeded violation — a fixture with no
// want comments proves nothing about the analyzer's teeth.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/tasterdb/taster/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE accepts either "double-quoted" (with \" escapes) or
// `backtick-quoted` regexp fragments after want.
var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one `// want` regexp at a file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads fixtureDir and checks analyzer a against its want comments.
func Run(t *testing.T, fixtureDir string, a *lint.Analyzer) {
	t.Helper()
	prog, err := lint.LoadAsModule(fixtureDir, "fixture", nil)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	expects := collectWants(t, prog)
	if len(expects) == 0 {
		t.Fatalf("fixture %s has no // want expectations: a golden suite must seed at least one violation", fixtureDir)
	}
	diags := lint.Run(prog, []*lint.Analyzer{a})

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		if e := match(expects, pos, d.Message); e == nil {
			t.Errorf("%s: unexpected %s finding: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

func match(expects []*expectation, pos token.Position, msg string) *expectation {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.pattern.MatchString(msg) {
			e.matched = true
			return e
		}
	}
	return nil
}

func collectWants(t *testing.T, prog *lint.Program) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s: malformed want comment %q", pos, c.Text)
					}
					for _, q := range quoted {
						pat := q[2] // backtick form, taken literally
						if q[1] != "" || q[2] == "" {
							pat = unescape(q[1])
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: rx})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// unescape undoes the \" escaping inside a quoted want pattern.
func unescape(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return s
}

// Diagnose is a debugging helper: it renders every finding of the
// analyzers over fixtureDir (used while authoring fixtures).
func Diagnose(fixtureDir string, as ...*lint.Analyzer) (string, error) {
	prog, err := lint.LoadAsModule(fixtureDir, "fixture", nil)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, d := range lint.Run(prog, as) {
		fmt.Fprintf(&b, "%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return b.String(), nil
}
