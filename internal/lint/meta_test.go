package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/tasterdb/taster/internal/lint"
	"github.com/tasterdb/taster/internal/lint/detrand"
	"github.com/tasterdb/taster/internal/lint/locksafe"
	"github.com/tasterdb/taster/internal/lint/mapiter"
	"github.com/tasterdb/taster/internal/lint/poolsafe"
	"github.com/tasterdb/taster/internal/lint/snapshotimmut"
)

// The meta-tests load the real repository (not fixtures) and prove two
// things the golden suites cannot: the shipped tree is clean under every
// analyzer, and deleting a known guard from a real file turns tasterlint
// red — i.e. the analyzers have teeth against this codebase, not just
// against hand-built fixtures. Each load type-checks the whole module, so
// the tests are skipped under -short (the fast `make race` path).

var allAnalyzers = []*lint.Analyzer{
	detrand.Analyzer,
	mapiter.Analyzer,
	locksafe.Analyzer,
	snapshotimmut.Analyzer,
	poolsafe.Analyzer,
}

// repoRoot locates the module root two levels up from internal/lint.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving repo root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root %s has no go.mod: %v", root, err)
	}
	return root
}

// render formats diagnostics for failure messages.
func render(prog *lint.Program, diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("\n  ")
		b.WriteString(prog.Fset.Position(d.Pos).String())
		b.WriteString(": ")
		b.WriteString(d.Analyzer)
		b.WriteString(": ")
		b.WriteString(d.Message)
	}
	return b.String()
}

// mustRewrite asserts old occurs exactly once in the file and returns the
// contents with old replaced by new — a meta-test that silently matched
// nothing would prove nothing.
func mustRewrite(t *testing.T, path, old, new string) []byte {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if n := strings.Count(string(src), old); n != 1 {
		t.Fatalf("%s: expected exactly one occurrence of %q, found %d — the guard the meta-test deletes has moved; update the test", path, old, n)
	}
	return []byte(strings.Replace(string(src), old, new, 1))
}

// TestRepoClean is the suite's ground truth: the shipped tree produces
// zero findings under all five analyzers.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("meta-test type-checks the whole module; skipped under -short")
	}
	root := repoRoot(t)
	prog, err := lint.Load(root, nil)
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if diags := lint.Run(prog, allAnalyzers); len(diags) > 0 {
		t.Errorf("expected a clean tree, got %d findings:%s", len(diags), render(prog, diags))
	}
}

// TestMetaSortGuardDeleted removes the dominating sort.Slice from
// warehouse.listOf via overlay and asserts mapiter catches the regression
// at that file.
func TestMetaSortGuardDeleted(t *testing.T) {
	if testing.Short() {
		t.Skip("meta-test type-checks the whole module; skipped under -short")
	}
	root := repoRoot(t)
	target := filepath.Join(root, "internal", "warehouse", "warehouse.go")
	// Swap the guard for a non-call reference so the sort import stays
	// used and the tree still type-checks.
	mutated := mustRewrite(t, target,
		"sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })",
		"_ = sort.SearchInts")
	prog, err := lint.Load(root, map[string][]byte{target: mutated})
	if err != nil {
		t.Fatalf("loading mutated repo: %v", err)
	}
	diags := lint.Run(prog, []*lint.Analyzer{mapiter.Analyzer})
	want := regexp.MustCompile(`append to out inside range over map`)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		if pos.Filename == target && want.MatchString(d.Message) {
			return // the analyzer caught the deleted guard
		}
	}
	t.Errorf("deleting the listOf sort guard did not turn mapiter red; got:%s", render(prog, diags))
}

// TestMetaWallClockInjected adds a time.Now call to a planner source via
// overlay and asserts detrand flags it.
func TestMetaWallClockInjected(t *testing.T) {
	if testing.Short() {
		t.Skip("meta-test type-checks the whole module; skipped under -short")
	}
	root := repoRoot(t)
	target := filepath.Join(root, "internal", "planner", "build.go")
	mutated := mustRewrite(t, target,
		"import (\n\t\"fmt\"\n",
		"import (\n\t\"fmt\"\n\t\"time\"\n")
	mutated = append(mutated, []byte("\nfunc lintMetaWallClockProbe() int64 { return time.Now().UnixNano() }\n")...)
	prog, err := lint.Load(root, map[string][]byte{target: mutated})
	if err != nil {
		t.Fatalf("loading mutated repo: %v", err)
	}
	diags := lint.Run(prog, []*lint.Analyzer{detrand.Analyzer})
	want := regexp.MustCompile(`wall-clock read time\.Now`)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		if pos.Filename == target && want.MatchString(d.Message) {
			return
		}
	}
	t.Errorf("injecting time.Now into planner did not turn detrand red; got:%s", render(prog, diags))
}
