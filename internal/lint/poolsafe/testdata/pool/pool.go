// Package pool is the poolsafe fixture: every VecPool Get result must be
// released, returned or handed onward; discarded or read-only-local
// results are the leak shapes.
package pool

// Batch stands in for the real pooled batch; Sel mirrors the selection
// vector the kernel filter path attaches to hand survivors downstream.
type Batch struct {
	n   int
	Sel []int32
}

// Len reports the batch size.
func (b *Batch) Len() int { return b.n }

// VecPool matches the real pool by name, which is how the analyzer binds.
type VecPool struct{}

// GetBatch vends a pooled batch.
func (p *VecPool) GetBatch(n int) *Batch { return &Batch{n: n} }

// GetVector vends a pooled vector.
func (p *VecPool) GetVector(n int) []float64 { return make([]float64, n) }

// GetSel vends a pooled selection-vector buffer.
func (p *VecPool) GetSel(n int) []int32 { return make([]int32, 0, n) }

// PutSel returns a selection buffer to the pool.
func (p *VecPool) PutSel(sel []int32) {}

// Release returns a batch to the pool.
func (p *VecPool) Release(b *Batch) {}

// Bad: the result is dropped on the floor — it can never be released.
func discard(p *VecPool) {
	p.GetBatch(8) // want `pooled GetBatch result discarded`
}

// Bad: bound to a local that is only ever read; no Release, no hand-off.
func leak(p *VecPool) int {
	b := p.GetBatch(8) // want `pooled GetBatch result b never escapes this function`
	n := 0
	for i := 0; i < b.Len(); i++ {
		n += i
	}
	return n
}

// Bad: writing into the vector is still local-only; ownership never moves.
func leakVec(p *VecPool) {
	v := p.GetVector(4) // want `pooled GetVector result v never escapes this function`
	v[0] = 1.5
}

// Good: release-on-consume via defer.
func useAndRelease(p *VecPool) int {
	b := p.GetBatch(8)
	defer p.Release(b)
	return b.Len()
}

// Good: ownership transfers with the returned reference.
func handOff(p *VecPool) *Batch {
	b := p.GetBatch(4)
	return b
}

type sink struct{ kept *Batch }

// Good: stored into a field — the structure now owns the batch.
func stash(p *VecPool, s *sink) {
	b := p.GetBatch(2)
	s.kept = b
}

// Good: handed onward through append.
func collect(p *VecPool, out [][]float64) [][]float64 {
	v := p.GetVector(4)
	return append(out, v)
}

// Good: the audited escape hatch.
func scratch(p *VecPool) int {
	//taster:pooled fixture: scratch buffer measured for capacity only, arena freed wholesale
	b := p.GetBatch(1)
	return b.Len()
}

// Good: an annotated intentional drop (pool warm-up).
func prewarm(p *VecPool) {
	//taster:pooled fixture: warm-up primes the freelist, the result is deliberately dropped
	p.GetBatch(64)
}

// Bad: a selection buffer that stays a read-only local leaks from the pool
// exactly like a batch.
func leakSel(p *VecPool) int {
	sel := p.GetSel(8) // want `pooled GetSel result sel never escapes this function`
	n := 0
	for range sel {
		n++
	}
	return n
}

// Good: the (batch, sel) hand-off — storing the pooled buffer into
// Batch.Sel transfers ownership to the batch, whose Release reclaims it.
func attachSel(p *VecPool, b *Batch) {
	sel := p.GetSel(b.Len())
	b.Sel = sel
}

// Good: survivors refined into the buffer, then returned to the pool.
func refineAndPut(p *VecPool) {
	sel := p.GetSel(4)
	p.PutSel(sel)
}
