// Package poolsafe enforces the VecPool ownership contract: a batch or
// vector obtained from a pool must either be handed onward (to an
// operator, a Release call, a field, a slice, a return value — ownership
// transfers with the reference) or it leaks from the pool's perspective,
// and worse, a forgotten Release on the hot path quietly reintroduces the
// per-batch allocations the pool exists to remove.
//
// The pass is an escape check, not a full path-sensitive proof: for every
// `p.GetBatch(...)` / `p.GetVector(...)` / `p.GetSel(...)` call on a
// VecPool it demands that the result either escapes the function (call
// argument — which covers Release, PutSel and copy-out helpers —, return
// statement, assignment into a field/element/outer variable, composite
// literal, channel send) or the call carries a `//taster:pooled <why>`
// annotation. Results that are discarded outright, or bound to a local
// that is only ever read, are exactly the leak shapes and are reported.
//
// Selection vectors ride the same contract as batches: the kernel filter
// path hands survivors downstream as a (batch, sel) pair by storing the
// pooled GetSel buffer into Batch.Sel — an assignment-into-field escape,
// after which Release (which reclaims an attached Sel) or Materialize
// owns the reclaim. A GetSel result that stays a read-only local is a
// leaked sel buffer exactly like a leaked batch.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/tasterdb/taster/internal/lint"
)

// Analyzer is the poolsafe pass.
var Analyzer = &lint.Analyzer{
	Name: "poolsafe",
	Doc:  "require every VecPool Get result to be released, returned or handed onward on all paths",
	Run:  run,
}

// getMethods are the pool's allocation entry points.
var getMethods = map[string]bool{"GetBatch": true, "GetVector": true, "GetSel": true}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, f, fd)
		}
	}
}

// isPoolGet reports whether call is <expr>.GetBatch/GetVector/GetSel on a value
// whose named type is VecPool (matching by name keeps the analyzer
// honest in fixtures while binding to internal/storage in the real tree).
func isPoolGet(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !getMethods[sel.Sel.Name] {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "VecPool"
}

func checkFunc(pass *lint.Pass, file *ast.File, fd *ast.FuncDecl) {
	// First pass: find Get calls and how their results are bound.
	type binding struct {
		call *ast.CallExpr
		obj  types.Object // local the result is bound to; nil if unbound
	}
	var gets []binding
	bound := map[*ast.CallExpr]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isPoolGet(pass, call) {
				continue
			}
			bound[call] = true
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				// Directly assigned into a field/element: that is already
				// an escape (ownership moved into the structure).
				continue
			}
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = pass.Info.Defs[id]
			} else {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			// Binding to a pre-existing variable (plain =) also counts as
			// a local we must track, same as :=.
			gets = append(gets, binding{call: call, obj: obj})
		}
		return true
	})

	// Unbound Get calls: fine when nested in a call/return/composite (the
	// result escapes immediately), a leak when the statement discards it.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !isPoolGet(pass, call) || bound[call] {
			return true
		}
		if pass.Prog.Annotated(file, call, "taster:pooled") {
			return true
		}
		pass.Reportf(call.Pos(), "pooled %s result discarded: the batch can never be released back to the pool; bind it and Release it (or copy out) when consumed", callName(call))
		return true
	})

	for _, g := range gets {
		if pass.Prog.Annotated(file, g.call, "taster:pooled") {
			continue
		}
		if escapes(pass, fd, g.obj, g.call) {
			continue
		}
		pass.Reportf(g.call.Pos(), "pooled %s result %s never escapes this function: no Release, no return, no hand-off — the pool contract requires release-on-consume or an explicit copy-out (annotate //taster:pooled <why> if ownership is genuinely local)", callName(g.call), g.obj.Name())
	}
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Get"
}

// escapes reports whether obj (bound at get) is ever handed onward:
// passed to any call (Release included), returned, stored into a field,
// element or another variable, placed in a composite literal, or sent on
// a channel.
func escapes(pass *lint.Pass, fd *ast.FuncDecl, obj types.Object, get *ast.CallExpr) bool {
	parents := map[ast.Node]ast.Node{}
	var prev []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			prev = prev[:len(prev)-1]
			return true
		}
		if len(prev) > 0 {
			parents[n] = prev[len(prev)-1]
		}
		prev = append(prev, n)
		return true
	})

	escape := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if escape {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj || id.Pos() <= get.Pos() {
			return true
		}
		// Walk outward judging the use by its syntactic context.
		var child ast.Node = id
		for p := parents[id]; p != nil; child, p = p, parents[p] {
			switch parent := p.(type) {
			case *ast.CallExpr:
				for _, arg := range parent.Args {
					if arg == child {
						escape = true
						return false
					}
				}
				// Receiver position (v.Len()) is a read; stop walking —
				// the call result, not v, flows outward from here.
				return true
			case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt:
				escape = true
				return false
			case *ast.AssignStmt:
				for _, rhs := range parent.Rhs {
					if rhs == child {
						// Stored somewhere: field, element or another
						// variable all transfer the reference onward.
						escape = true
						return false
					}
				}
				return true // appears only on the LHS: a rebind, not a use
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.ParenExpr, *ast.StarExpr, *ast.UnaryExpr, *ast.KeyValueExpr:
				// keep walking outward
			default:
				return true // reached a statement: plain local read
			}
		}
		return true
	})
	return escape
}
