package poolsafe_test

import (
	"testing"

	"github.com/tasterdb/taster/internal/lint/analysistest"
	"github.com/tasterdb/taster/internal/lint/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, "testdata", poolsafe.Analyzer)
}
