// Package a is the mapiter fixture: order-sensitive map-range bodies must
// be flagged, the collect-then-sort idiom and commutative reductions must
// stay quiet, and the //taster:sorted annotation must suppress.
package a

import (
	"sort"
	"strings"
)

// Bad: slice built in map order with no dominating sort.
func keysUnsorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want `append to out inside range over map without a dominating sort`
	}
	return out
}

// Good: the canonical collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Good: sort.Slice over the collected values also dominates.
func valsSorted(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Bad: feeding a string builder in map order.
func render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString call inside range over map`
	}
	return b.String()
}

// Bad: string concatenation in map order.
func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation onto s inside range over map`
	}
	return s
}

// Bad: float accumulation is not associative.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation into total inside range over map`
	}
	return total
}

// Good: integer accumulation is commutative.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Good: keyed writes into another map commute.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Bad: argmin over the key — ties resolve in map order.
func smallestValueKey(m map[string]int) string {
	best := ""
	min := int(^uint(0) >> 1)
	for k, v := range m {
		if v < min {
			min = v
			best = k // want `last-write-wins assignment to best inside range over map`
		}
	}
	return best
}

// Good: pure min over basic values converges in any order.
func minValue(m map[string]int) int {
	min := int(^uint(0) >> 1)
	for _, v := range m {
		if v < min {
			min = v
		}
	}
	return min
}

// Bad: binding an identity-carrying value — which pointer survives
// depends on iteration order.
type item struct{ n int }

func anyItem(m map[string]*item) *item {
	var winner *item
	for _, it := range m {
		winner = it // want `last-write-wins assignment to winner inside range over map`
	}
	return winner
}

// Bad: channel receivers observe map order.
func stream(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// Good: suppressed with a justification.
func idsForLookup(m map[uint64]bool) []uint64 {
	ids := make([]uint64, 0, len(m))
	//taster:sorted ids only keys a map lookup downstream; order never reaches an output
	for id := range m {
		ids = append(ids, id)
	}
	return ids
}
