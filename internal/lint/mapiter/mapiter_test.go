package mapiter_test

import (
	"testing"

	"github.com/tasterdb/taster/internal/lint/analysistest"
	"github.com/tasterdb/taster/internal/lint/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, "testdata", mapiter.Analyzer)
}
