// Package mapiter flags `range` loops over maps whose bodies are
// order-sensitive: Go randomizes map iteration order per run, so any
// observable output assembled inside such a loop — a slice built by
// append, a hash or string builder fed per element, a float accumulated
// with non-associative arithmetic, a last-write-wins variable — differs
// between byte-identical runs and breaks taster's determinism contract.
//
// The canonical safe idiom is rescued automatically: appending the keys
// (or values) to a slice and sorting that slice later in the same function
// counts as a dominating sort. Everything else needs either the sort or an
// explicit `//taster:sorted <why>` annotation on the range statement
// explaining why order cannot leak (e.g. the loop feeds another map, or a
// commutative integer reduction).
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/tasterdb/taster/internal/lint"
)

// Analyzer is the mapiter pass.
var Analyzer = &lint.Analyzer{
	Name: "mapiter",
	Doc:  "flag order-sensitive bodies of range-over-map loops lacking a dominating sort",
	Run:  run,
}

// hashWriters are method names that feed element data into an
// order-sensitive accumulator (hashes, strings.Builder, bytes.Buffer,
// bufio.Writer all expose this surface).
var hashWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// orderedSinks are package-level functions that serialize their arguments
// into an ordered stream.
var orderedSinks = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"binary.Write": true, "io.WriteString": true,
}

// sortCalls are the package-level sorting entry points that count as a
// dominating sort for a slice built inside the loop.
var sortCalls = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, f, fd)
		}
	}
}

func checkFunc(pass *lint.Pass, file *ast.File, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Prog.Annotated(file, rs, "taster:sorted") {
			return true
		}
		checkRange(pass, fd, rs)
		return true
	})
}

// rangeVarObj returns the object bound to one range variable (key or
// value), handling both `:=` definitions and assignment to a pre-declared
// variable.
func rangeVarObj(pass *lint.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

func checkRange(pass *lint.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	valObj := rangeVarObj(pass, rs.Value)
	refs := func(e ast.Expr, obj types.Object) bool {
		if obj == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	// lastWriteWins decides whether a plain `=` whose RHS is rhs smuggles
	// map order into the surviving value. Deriving from the KEY is always
	// an identity leak (argmin/argmax winners, dedup survivors). Deriving
	// from the VALUE is flagged only when the assigned value carries
	// identity (pointer, struct, slice, map, interface): a pure min/max
	// reduction over basic values (`if v < min { min = v }`) converges to
	// the same result in any order and stays quiet. A compare-guarded
	// basic value used as a proxy for identity elsewhere is the documented
	// blind spot.
	lastWriteWins := func(rhs ast.Expr) bool {
		if refs(rhs, keyObj) {
			return true
		}
		if !refs(rhs, valObj) {
			return false
		}
		t := pass.Info.TypeOf(rhs)
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Struct, *types.Slice, *types.Map, *types.Interface, *types.Chan:
			return true
		}
		return false
	}

	type appendTarget struct {
		expr string
		pos  token.Pos
	}
	var appends []appendTarget

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs {
				// Nested ranges are analyzed by their own visit; their
				// bodies should not double-report through this one.
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: receivers observe map iteration order; sort the keys first (or annotate //taster:sorted <why>)")
		case *ast.CallExpr:
			if name, ok := calleeName(pass, n); ok {
				if orderedSinks[name] {
					pass.Reportf(n.Pos(), "%s inside range over map feeds an ordered stream in map iteration order; sort the keys first (or annotate //taster:sorted <why>)", name)
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && hashWriters[sel.Sel.Name] {
				if _, isSel := pass.Info.Selections[sel]; isSel {
					pass.Reportf(n.Pos(), "%s call inside range over map feeds an order-sensitive accumulator in map iteration order; sort the keys first (or annotate //taster:sorted <why>)", sel.Sel.Name)
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, lastWriteWins, func(tgt string, pos token.Pos) {
				appends = append(appends, appendTarget{expr: tgt, pos: pos})
			})
		case *ast.IncDecStmt:
			// Integer ++/-- is commutative; nothing to do.
		}
		return true
	})

	// Dominating-sort rescue: a sort call on the appended slice later in
	// the same function (textually after the loop) launders the order.
	for _, a := range appends {
		if sortedAfter(pass, fd, rs.End(), a.expr) {
			continue
		}
		pass.Reportf(a.pos, "append to %s inside range over map without a dominating sort: slice order follows map iteration order; sort %s after the loop (or annotate //taster:sorted <why>)", a.expr, a.expr)
	}
}

// checkAssign classifies one assignment inside the loop body.
func checkAssign(pass *lint.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, lastWriteWins func(ast.Expr) bool, recordAppend func(string, token.Pos)) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}

		// s = append(s, ...) — the slice's final order is the map's.
		if rhs != nil {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				recordAppend(types.ExprString(lhs), as.Pos())
				continue
			}
		}

		// Writes keyed by the loop variable into another map are
		// commutative; everything below concerns non-map destinations.
		if base := unwrapLHS(lhs); base != nil {
			if t := pass.Info.TypeOf(base); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					continue
				}
			}
		}

		lt := pass.Info.TypeOf(lhs)
		switch as.Tok {
		case token.ADD_ASSIGN:
			if lt == nil {
				continue
			}
			b := lt.Underlying()
			if bt, ok := b.(*types.Basic); ok {
				if bt.Info()&types.IsString != 0 {
					pass.Reportf(as.Pos(), "string concatenation onto %s inside range over map: result text follows map iteration order; sort the keys first (or annotate //taster:sorted <why>)", types.ExprString(lhs))
				} else if bt.Info()&types.IsFloat != 0 {
					pass.Reportf(as.Pos(), "float accumulation into %s inside range over map: floating-point addition is not associative, so the sum depends on map iteration order; sort the keys first (or annotate //taster:sorted <why>)", types.ExprString(lhs))
				}
			}
		case token.QUO_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			if lt == nil {
				continue
			}
			if bt, ok := lt.Underlying().(*types.Basic); ok && bt.Info()&types.IsFloat != 0 {
				pass.Reportf(as.Pos(), "float accumulation into %s inside range over map: floating-point arithmetic is not associative, so the result depends on map iteration order; sort the keys first (or annotate //taster:sorted <why>)", types.ExprString(lhs))
			}
		case token.ASSIGN:
			// Plain overwrite of a variable that outlives the loop, with a
			// value whose identity derives from the key: last-write-wins
			// in map order (the argmax-with-ties bug class).
			if rhs != nil && lastWriteWins(rhs) && outlivesLoop(pass, rs, lhs) {
				pass.Reportf(as.Pos(), "last-write-wins assignment to %s inside range over map: the surviving value depends on map iteration order (argmax ties, dedup winners); sort the keys first (or annotate //taster:sorted <why>)", types.ExprString(lhs))
			}
		}
	}
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		return b.Name() == "append"
	}
	return false
}

// unwrapLHS peels index/star/paren layers off an assignment target and
// returns the base expression whose type decides commutativity.
func unwrapLHS(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// outlivesLoop reports whether the assignment target is a variable or
// field declared outside the loop body (a write that survives the loop).
// Assignments to loop-local temporaries are invisible outside one
// iteration and therefore harmless.
func outlivesLoop(pass *lint.Pass, rs *ast.RangeStmt, lhs ast.Expr) bool {
	switch x := lhs.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		// A nil object means the ident is being defined here (`:=`); a
		// declaration position inside the loop means a per-iteration
		// temporary. Either way the write cannot survive the loop.
		return obj != nil && obj.Pos() < rs.Pos()
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true // fields and element writes always escape the iteration
	}
	return false
}

// calleeName renders a package-qualified callee like "fmt.Fprintf".
func calleeName(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// sortedAfter reports whether a sorting call mentioning target appears in
// fd after pos — the dominating-sort rescue.
func sortedAfter(pass *lint.Pass, fd *ast.FuncDecl, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		name, ok := calleeName(pass, call)
		if ok && sortCalls[name] {
			for _, arg := range call.Args {
				if mentionsExpr(arg, target) {
					found = true
					return false
				}
			}
		}
		// Method form: target.Sort() or sort on a wrapper of the target.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sort" {
			if mentionsExpr(sel.X, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsExpr reports whether the rendered expression contains target as
// a syntactic component (exact render or a sub-expression render).
func mentionsExpr(e ast.Expr, target string) bool {
	if types.ExprString(e) == target {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if x, ok := n.(ast.Expr); ok && types.ExprString(x) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
