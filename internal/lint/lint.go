// Package lint is taster's in-repo static-analysis framework: the minimal
// subset of golang.org/x/tools/go/analysis that the five repo-specific
// analyzers (detrand, mapiter, locksafe, snapshotimmut, poolsafe) need,
// implemented on the standard library alone.
//
// Why not x/tools itself: the build environment is hermetic (no module
// proxy), so the analyzers are written against this shim instead. The shim
// deliberately mirrors the x/tools API shape — an Analyzer with a Run
// func(*Pass) and positional Diagnostics — so that porting to the real
// go/analysis multichecker (and with it `go vet -vettool`) when x/tools
// becomes vendorable is a mechanical change of import paths, not a
// rewrite. Until then cmd/tasterlint is the driver and `make lint` the
// entry point.
//
// Beyond the per-package Pass, the framework supports whole-program
// analyzers (RunProgram): locksafe and snapshotimmut reason across package
// boundaries (call graphs, annotated types referenced from other
// packages), which the facts mechanism would provide under x/tools.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker. Exactly one of Run (per
// package) or RunProgram (whole program, for cross-package reasoning) must
// be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only flags.
	Name string
	// Doc is the one-paragraph description printed by `tasterlint -help`.
	Doc string
	// Run analyzes a single package.
	Run func(*Pass)
	// RunProgram analyzes the whole loaded program at once.
	RunProgram func(*ProgramPass)
}

// Package is one loaded, type-checked package of the target module.
type Package struct {
	// Path is the full import path (module path + relative dir).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's resolution tables for Files.
	Info *types.Info
}

// Program is a loaded module: every package, sharing one FileSet and one
// type-checker universe (an object referenced from two packages is the
// same *types.Object pointer, which is what lets locksafe stitch a
// cross-package call graph).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// annotations caches per-file line→comment-text indexes.
	annotations map[*ast.File]map[int]string
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	report   func(Diagnostic)
}

// ProgramPass carries the whole program through a RunProgram analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Fset     *token.FileSet
	report   func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Run executes the analyzers over the program and returns every finding
// sorted by file position. Per-package analyzers visit packages in
// deterministic (path-sorted) order; diagnostics are deduplicated so a
// program-level analyzer revisiting a package cannot double-report.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	pkgs := append([]*Package(nil), prog.Packages...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, Fset: prog.Fset, report: collect})
		case a.Run != nil:
			for _, pkg := range pkgs {
				a.Run(&Pass{
					Analyzer: a, Prog: prog, Pkg: pkg, Fset: prog.Fset,
					Files: pkg.Files, Types: pkg.Types, Info: pkg.Info,
					report: collect,
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}

// annotationIndex builds the line→comment map for a file: for every
// comment, the text of its last line is recorded under both that line and
// the following line, so an annotation suppresses a construct written
// either on the same line or on the line directly above it.
func (prog *Program) annotationIndex(f *ast.File) map[int]string {
	if prog.annotations == nil {
		prog.annotations = make(map[*ast.File]map[int]string)
	}
	if idx, ok := prog.annotations[f]; ok {
		return idx
	}
	idx := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			end := prog.Fset.Position(c.End()).Line
			idx[end] += " " + c.Text
			idx[end+1] += " " + c.Text
		}
	}
	prog.annotations[f] = idx
	return idx
}

// Annotated reports whether node carries the given //taster:<name>
// annotation: a comment on the node's first line or the line immediately
// above it containing the literal marker. Analyzers use this as their
// audited escape hatch — the convention requires a justification after the
// marker, which review sees next to the suppressed construct.
func (prog *Program) Annotated(f *ast.File, node ast.Node, marker string) bool {
	line := prog.Fset.Position(node.Pos()).Line
	return containsMarker(prog.annotationIndex(f)[line], marker)
}

// DocAnnotated reports whether a declaration's doc comment carries the
// marker (used for //taster:immutable on type declarations and
// //taster:mutator on functions).
func DocAnnotated(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if containsMarker(c.Text, marker) {
			return true
		}
	}
	return false
}

func containsMarker(text, marker string) bool {
	for i := 0; i+len(marker) <= len(text); i++ {
		if text[i:i+len(marker)] == marker {
			return true
		}
	}
	return false
}

// FileOf returns the *ast.File of pkg containing pos.
func (pkg *Package) FileOf(fset *token.FileSet, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// PackageOf returns the loaded package containing pos.
func (prog *Program) PackageOf(pos token.Pos) *Package {
	for _, pkg := range prog.Packages {
		if pkg.FileOf(prog.Fset, pos) != nil {
			return pkg
		}
	}
	return nil
}
