// Package snap is the snapshotimmut fixture: a //taster:immutable type
// may be written only inside builders or //taster:mutator functions.
package snap

// Snapshot is a published read-path value.
//
//taster:immutable
type Snapshot struct {
	count int
	items []int
	meta  *Meta
}

// Meta hangs off a Snapshot field; writes through the field still mutate
// published state.
type Meta struct {
	gen int
}

// Good: builders construct privately before publication.
func NewSnapshot(n int) *Snapshot {
	s := &Snapshot{}
	s.count = n
	s.items = make([]int, n)
	s.meta = &Meta{}
	return s
}

// Good: decode-prefixed functions are builder context too.
func decodeSnapshot(raw []int) *Snapshot {
	s := &Snapshot{}
	s.items = append(s.items, raw...)
	return s
}

// Bad: a post-publication field write.
func bump(s *Snapshot) {
	s.count = s.count + 1 // want `write to field of immutable type snap.Snapshot outside a constructor/builder`
}

// Bad: increment is a write too.
func bumpInc(s *Snapshot) {
	s.count++ // want `write to field of immutable type snap.Snapshot outside a constructor/builder`
}

// Bad: element writes through a field mutate the published object.
func poke(s *Snapshot) {
	s.items[0] = 7 // want `write to field of immutable type snap.Snapshot outside a constructor/builder`
}

// Bad: writing through a pointer field reaches published state.
func regen(s *Snapshot) {
	s.meta.gen = 2 // want `write to field of immutable type snap.Snapshot outside a constructor/builder`
}

// Good: the audited escape hatch for sanctioned idioms.
//
//taster:mutator fixture: stands in for a sync.Once-guarded lazy cache
func warm(s *Snapshot) {
	s.count = len(s.items)
}

// Scratch is not annotated; its fields may be written anywhere.
type Scratch struct {
	n int
}

// Good: unannotated types are out of scope.
func scribble(sc *Scratch) {
	sc.n = 42
	sc.n++
}
