// Package snapshotimmut enforces the publish-then-freeze contract on
// taster's shared read-path types. The engine's lock-free serving story
// depends on RCU discipline: a tuning snapshot, a warehouse view, a table
// version or a zone map is built privately, published by one atomic store,
// and never written again — readers holding an older pointer must see a
// frozen object forever. A single post-publish field write is a data race
// the race detector only catches if a test happens to interleave it, and a
// determinism bug even when it doesn't.
//
// Types opt in with a `//taster:immutable` marker in their doc comment.
// Field writes (including element writes through a field) to values of an
// annotated type are then only legal inside constructor/builder functions
// — recognized by name prefix (New/new, Build/build, make, decode/Decode,
// read/Read, load/Load, open/Open, restore/Restore, from/From, clone/
// Clone) — or inside functions annotated `//taster:mutator <why>`, the
// audited escape hatch for sanctioned idioms like sync.Once-guarded lazy
// caches.
package snapshotimmut

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/tasterdb/taster/internal/lint"
)

// Analyzer is the snapshotimmut pass.
var Analyzer = &lint.Analyzer{
	Name:       "snapshotimmut",
	Doc:        "forbid field writes to //taster:immutable types outside constructors and //taster:mutator functions",
	RunProgram: run,
}

// builderPrefixes are the function-name prefixes recognized as
// constructor/builder context (matched case-insensitively).
var builderPrefixes = []string{
	"new", "build", "make", "decode", "read", "load", "open", "restore", "from", "clone",
}

func run(pass *lint.ProgramPass) {
	immutable := collectAnnotated(pass)
	if len(immutable) == 0 {
		return
	}
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if isBuilder(fd) {
					continue
				}
				checkFunc(pass, pkg, fd, immutable)
			}
		}
	}
}

// collectAnnotated finds every type declaration carrying the
// //taster:immutable marker anywhere in the program.
func collectAnnotated(pass *lint.ProgramPass) map[*types.TypeName]bool {
	set := make(map[*types.TypeName]bool)
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !lint.DocAnnotated(ts.Doc, "taster:immutable") && !lint.DocAnnotated(gd.Doc, "taster:immutable") {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						set[tn] = true
					}
				}
			}
		}
	}
	return set
}

func isBuilder(fd *ast.FuncDecl) bool {
	if lint.DocAnnotated(fd.Doc, "taster:mutator") {
		return true
	}
	name := strings.ToLower(fd.Name.Name)
	for _, p := range builderPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func checkFunc(pass *lint.ProgramPass, pkg *lint.Package, fd *ast.FuncDecl, immutable map[*types.TypeName]bool) {
	report := func(lhs ast.Expr, tn *types.TypeName) {
		pass.Reportf(lhs.Pos(),
			"write to field of immutable type %s.%s outside a constructor/builder: published %s values are frozen (RCU readers hold them without locks); build a new value instead, or annotate the function //taster:mutator <why>",
			tn.Pkg().Name(), tn.Name(), tn.Name())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if tn := immutableFieldBase(pkg, lhs, immutable); tn != nil {
					report(lhs, tn)
				}
			}
		case *ast.IncDecStmt:
			if tn := immutableFieldBase(pkg, n.X, immutable); tn != nil {
				report(n.X, tn)
			}
		}
		return true
	})
}

// immutableFieldBase reports the annotated type when lhs writes a field of
// an immutable value: `x.f = v`, `x.f[i] = v`, `*x.f = v` and chains
// thereof. The *outermost* selector on an annotated base decides — writing
// through a pointer stored in a field still mutates state reachable from
// the published object.
func immutableFieldBase(pkg *lint.Package, lhs ast.Expr, immutable map[*types.TypeName]bool) *types.TypeName {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			// Must be a field selection (not a qualified identifier or a
			// method value).
			if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if tn := namedTypeName(pkg.Info.TypeOf(x.X)); tn != nil && immutable[tn] {
					return tn
				}
			}
			lhs = x.X
		default:
			return nil
		}
	}
}

// namedTypeName unwraps pointers and returns the defined type's name
// object, if any.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Pointer); ok {
		t = n.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
