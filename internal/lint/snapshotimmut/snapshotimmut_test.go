package snapshotimmut_test

import (
	"testing"

	"github.com/tasterdb/taster/internal/lint/analysistest"
	"github.com/tasterdb/taster/internal/lint/snapshotimmut"
)

func TestSnapshotimmut(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotimmut.Analyzer)
}
