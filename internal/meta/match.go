package meta

import (
	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
)

// Requirements describes the query subplan a synopsis would have to serve
// (paper §IV-A, "Matching subplans to materialized synopses").
type Requirements struct {
	// Sig is the signature of the query subplan to replace.
	Sig plan.Signature
	// Filter is the subplan's filter conjunction (nil = no filters).
	Filter expr.Expr
	// NeedCols are the columns consumed above the subplan (group-by,
	// aggregate, join keys); the synopsis output must cover them.
	NeedCols []string
	// StratCols are the stratification attributes the query needs
	// (grouping + skew/join-key additions); the synopsis must stratify on a
	// superset to guarantee group coverage.
	StratCols []string
	// AggCols are the columns being aggregated ("" entries for COUNT(*)
	// are omitted); the synopsis must have been sized for them.
	AggCols []string
	// Accuracy is the query's accuracy requirement.
	Accuracy stats.AccuracySpec
	// Partition restricts the match to synopses scoped to this 1-based
	// partition of the base relation; 0 (the default) matches only
	// whole-table synopses, so partition-scoped entries never serve a
	// whole-table requirement by accident.
	Partition int
}

// Match is a usable materialized synopsis plus compensation instructions.
type Match struct {
	Entry *Entry
	// CompensateFilter is non-nil when the synopsis is strictly more general
	// than the subplan; applying the query's own filter above the synopsis
	// scan removes the extraneous tuples (paper: "some mismatches are
	// addressed by adding filtering and projection operators").
	CompensateFilter expr.Expr
}

// MatchSamples returns the materialized sample synopses usable for the
// requirements, per the paper's rules:
//
//  1. identical base relations and join predicates (subsumption core),
//  2. synopsis filter weaker than or equal to the query filter,
//  3. synopsis output ⊇ the columns the query consumes,
//  4. synopsis stratification ⊇ the query's stratification (group coverage),
//  5. aggregated columns covered (sample sized for their variance),
//  6. synopsis accuracy at least as strict as the query's.
func (s *Store) MatchSamples(req Requirements) []Match {
	var out []Match
	for _, e := range s.lookupIndex(req.Sig.IndexKey()) {
		d := &e.Desc
		if d.Kind != plan.UniformSample && d.Kind != plan.DistinctSample {
			continue
		}
		if d.Location == LocNone {
			continue
		}
		if d.Partition != req.Partition {
			continue
		}
		if !d.Sig.SameRelationsAndJoins(req.Sig) {
			continue
		}
		if !expr.Implies(req.Filter, d.FilterPred) {
			continue
		}
		if !plan.OutputSuperset(d.Sig.Output, req.NeedCols) {
			continue
		}
		if !plan.ColSuperset(d.StratCols, req.StratCols) {
			continue
		}
		if !aggCovered(d, req.AggCols) {
			continue
		}
		if !d.Accuracy.AtLeastAsStrict(req.Accuracy) {
			continue
		}
		m := Match{Entry: e}
		if !filtersEquivalent(req.Filter, d.FilterPred) {
			m.CompensateFilter = req.Filter
		}
		out = append(out, m)
	}
	return out
}

// MatchSamplePartitions returns one usable per-partition sample match for
// every partition 1..parts of the base relation — the complete set the
// planner merges (in partition order) to serve a whole-table requirement.
// It returns nil unless *every* partition has a usable materialized
// synopsis: a partial set cannot answer a cross-partition aggregate.
func (s *Store) MatchSamplePartitions(req Requirements, parts int) []Match {
	if parts <= 0 {
		return nil
	}
	out := make([]Match, 0, parts)
	for p := 1; p <= parts; p++ {
		preq := req
		preq.Partition = p
		ms := s.MatchSamples(preq)
		if len(ms) == 0 {
			return nil
		}
		out = append(out, ms[0])
	}
	return out
}

// MatchSketchJoins returns usable materialized sketch-join synopses. Sketches
// cannot be compensated after the fact (the per-key aggregation is baked in),
// so the build-side filter must be exactly equivalent, and join keys and the
// aggregate column must be identical.
func (s *Store) MatchSketchJoins(req Requirements, buildKeys []string, aggCol string) []Match {
	var out []Match
	for _, e := range s.lookupIndex(req.Sig.IndexKey()) {
		d := &e.Desc
		if d.Kind != plan.SketchJoinSynopsis || d.Location == LocNone {
			continue
		}
		if d.Partition != req.Partition {
			continue
		}
		if !d.Sig.SameRelationsAndJoins(req.Sig) {
			continue
		}
		if !filtersEquivalent(req.Filter, d.FilterPred) {
			continue
		}
		if !sameCols(d.BuildKeys, buildKeys) || d.AggCol != aggCol {
			continue
		}
		if !d.Accuracy.AtLeastAsStrict(req.Accuracy) {
			continue
		}
		out = append(out, Match{Entry: e})
	}
	return out
}

// aggCovered reports whether every aggregated column was part of the
// synopsis' sizing. COUNT(*) ("" removed upstream) is always covered: every
// weighted sample estimates cardinalities.
func aggCovered(d *Descriptor, aggCols []string) bool {
	if len(aggCols) == 0 {
		return true
	}
	have := make(map[string]bool, len(d.AggCols))
	for _, c := range d.AggCols {
		have[c] = true
	}
	for _, c := range aggCols {
		if !have[c] {
			return false
		}
	}
	return true
}

func filtersEquivalent(a, b expr.Expr) bool {
	if a == nil && b == nil {
		return true
	}
	return expr.Implies(a, b) && expr.Implies(b, a)
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := expr.DedupCols(a), expr.DedupCols(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
