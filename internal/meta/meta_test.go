package meta

import (
	"testing"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
)

func sig(tables []string, joins []string, filters []string, output []string) plan.Signature {
	return plan.Signature{Tables: tables, JoinPreds: joins, Filters: filters, Output: output}
}

func acc(rel, conf float64) stats.AccuracySpec {
	return stats.AccuracySpec{RelError: rel, Confidence: conf}
}

func baseDesc() Descriptor {
	return Descriptor{
		Kind:         plan.DistinctSample,
		Sig:          sig([]string{"orders"}, nil, nil, []string{"orders.amount", "orders.cust"}),
		StratCols:    []string{"orders.cust"},
		AggCols:      []string{"orders.amount"},
		P:            0.05,
		Delta:        100,
		Accuracy:     acc(0.1, 0.95),
		EstSizeBytes: 1000,
	}
}

func TestInternDedupes(t *testing.T) {
	s := NewStore()
	e1 := s.Intern(baseDesc())
	e2 := s.Intern(baseDesc())
	if e1.Desc.ID != e2.Desc.ID {
		t.Fatalf("identical descriptors interned twice: %d vs %d", e1.Desc.ID, e2.Desc.ID)
	}
	d := baseDesc()
	d.StratCols = []string{"orders.cust", "orders.region"}
	e3 := s.Intern(d)
	if e3.Desc.ID == e1.Desc.ID {
		t.Fatal("different stratification must intern separately")
	}
	if len(s.Entries()) != 2 {
		t.Fatalf("entries = %d", len(s.Entries()))
	}
}

func TestBenefitsWindow(t *testing.T) {
	s := NewStore()
	e := s.Intern(baseDesc())
	for q := 0; q < 10; q++ {
		s.RecordBenefit(e.Desc.ID, QueryBenefit{QueryID: q, CostWith: 1, CostExact: 5}, 4)
	}
	got, _ := s.Get(e.Desc.ID)
	if len(got.Benefits) != 4 {
		t.Fatalf("benefits kept = %d, want 4", len(got.Benefits))
	}
	if got.Benefits[0].QueryID != 6 {
		t.Fatalf("oldest kept = %d, want 6", got.Benefits[0].QueryID)
	}
	b, ok := got.BenefitFor(8)
	if !ok || b.Gain() != 4 {
		t.Fatalf("BenefitFor(8) = %+v %v", b, ok)
	}
	if _, ok := got.BenefitFor(2); ok {
		t.Fatal("evicted benefit must not resolve")
	}
	// Recording against unknown id is a no-op.
	s.RecordBenefit(999, QueryBenefit{}, 4)
}

func TestLocationAndSize(t *testing.T) {
	s := NewStore()
	e := s.Intern(baseDesc())
	if e.Desc.SizeBytes() != 1000 {
		t.Fatal("estimate size")
	}
	s.SetActualSize(e.Desc.ID, 2222)
	s.SetLocation(e.Desc.ID, LocBuffer)
	s.SetPinned(e.Desc.ID, true)
	got, _ := s.Get(e.Desc.ID)
	if got.Desc.SizeBytes() != 2222 || got.Desc.Location != LocBuffer || !got.Desc.Pinned {
		t.Fatalf("desc = %+v", got.Desc)
	}
	if len(s.Materialized()) != 1 {
		t.Fatal("Materialized")
	}
	s.SetLocation(e.Desc.ID, LocNone)
	if len(s.Materialized()) != 0 {
		t.Fatal("Materialized after eviction")
	}
}

func matchReq() Requirements {
	return Requirements{
		Sig:       sig([]string{"orders"}, nil, nil, []string{"orders.amount", "orders.cust"}),
		NeedCols:  []string{"orders.amount", "orders.cust"},
		StratCols: []string{"orders.cust"},
		AggCols:   []string{"orders.amount"},
		Accuracy:  acc(0.1, 0.95),
	}
}

func TestMatchSamplesHappyPath(t *testing.T) {
	s := NewStore()
	e := s.Intern(baseDesc())
	s.SetLocation(e.Desc.ID, LocWarehouse)
	ms := s.MatchSamples(matchReq())
	if len(ms) != 1 || ms[0].Entry.Desc.ID != e.Desc.ID {
		t.Fatalf("matches = %+v", ms)
	}
	if ms[0].CompensateFilter != nil {
		t.Fatal("no compensation needed for identical filters")
	}
}

func TestMatchSamplesRejections(t *testing.T) {
	mk := func(mod func(*Descriptor)) *Store {
		s := NewStore()
		d := baseDesc()
		mod(&d)
		e := s.Intern(d)
		s.SetLocation(e.Desc.ID, LocWarehouse)
		return s
	}
	req := matchReq()

	if got := mk(func(d *Descriptor) { d.Location = LocNone }).MatchSamples(req); len(got) != 0 {
		// Location is overwritten by SetLocation above; test unmaterialized
		// separately below.
		_ = got
	}
	// Unmaterialized candidates never match.
	s := NewStore()
	s.Intern(baseDesc())
	if got := s.MatchSamples(req); len(got) != 0 {
		t.Fatal("unmaterialized synopsis matched")
	}
	// Different tables.
	s2 := mk(func(d *Descriptor) { d.Sig.Tables = []string{"lineitem"} })
	if got := s2.MatchSamples(req); len(got) != 0 {
		t.Fatal("different relation matched")
	}
	// Missing output column.
	s3 := mk(func(d *Descriptor) { d.Sig.Output = []string{"orders.cust"} })
	if got := s3.MatchSamples(req); len(got) != 0 {
		t.Fatal("narrower output matched")
	}
	// Stratification not a superset.
	s4 := mk(func(d *Descriptor) { d.StratCols = nil })
	if got := s4.MatchSamples(req); len(got) != 0 {
		t.Fatal("weaker stratification matched")
	}
	// Weaker accuracy.
	s5 := mk(func(d *Descriptor) { d.Accuracy = acc(0.5, 0.5) })
	if got := s5.MatchSamples(req); len(got) != 0 {
		t.Fatal("weaker accuracy matched")
	}
	// Aggregate column not covered.
	s6 := mk(func(d *Descriptor) { d.AggCols = []string{"orders.other"} })
	if got := s6.MatchSamples(req); len(got) != 0 {
		t.Fatal("uncovered aggregate column matched")
	}
	// Sketch kind never matches sample requirements.
	s7 := mk(func(d *Descriptor) { d.Kind = plan.SketchJoinSynopsis })
	if got := s7.MatchSamples(req); len(got) != 0 {
		t.Fatal("sketch matched as sample")
	}
}

func TestMatchSamplesFilterSubsumption(t *testing.T) {
	// Stored synopsis: no filter (fully general). Query: gender='m'.
	// The paper's Employees example — the general sample serves the
	// filtered query with a compensating filter.
	s := NewStore()
	e := s.Intern(baseDesc())
	s.SetLocation(e.Desc.ID, LocWarehouse)
	req := matchReq()
	req.Filter = &expr.Cmp{Op: expr.EQ, L: &expr.Col{Name: "orders.cust"}, R: expr.Int(3)}
	req.Sig.Filters = []string{req.Filter.String()}
	ms := s.MatchSamples(req)
	if len(ms) != 1 {
		t.Fatalf("general sample must serve filtered query, got %d matches", len(ms))
	}
	if ms[0].CompensateFilter == nil {
		t.Fatal("must compensate with the query filter")
	}

	// Reverse: stored synopsis filtered, query unfiltered → no match.
	s2 := NewStore()
	d := baseDesc()
	d.FilterPred = &expr.Cmp{Op: expr.EQ, L: &expr.Col{Name: "orders.cust"}, R: expr.Int(3)}
	d.Sig.Filters = []string{d.FilterPred.String()}
	e2 := s2.Intern(d)
	s2.SetLocation(e2.Desc.ID, LocWarehouse)
	if got := s2.MatchSamples(matchReq()); len(got) != 0 {
		t.Fatal("narrower synopsis must not serve wider query")
	}
}

func TestMatchSketchJoins(t *testing.T) {
	s := NewStore()
	d := Descriptor{
		Kind:      plan.SketchJoinSynopsis,
		Sig:       sig([]string{"orderproducts"}, nil, nil, nil),
		BuildKeys: []string{"orderproducts.order_id"},
		AggCol:    "",
		Accuracy:  acc(0.1, 0.95),
	}
	e := s.Intern(d)
	s.SetLocation(e.Desc.ID, LocWarehouse)
	req := Requirements{Sig: d.Sig, Accuracy: acc(0.1, 0.95)}
	ms := s.MatchSketchJoins(req, []string{"orderproducts.order_id"}, "")
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	// Different build keys reject.
	if got := s.MatchSketchJoins(req, []string{"orderproducts.product_id"}, ""); len(got) != 0 {
		t.Fatal("different key matched")
	}
	// Different agg column rejects.
	if got := s.MatchSketchJoins(req, []string{"orderproducts.order_id"}, "x"); len(got) != 0 {
		t.Fatal("different agg matched")
	}
	// Filter mismatch rejects (sketches cannot be compensated).
	req2 := req
	req2.Filter = &expr.Cmp{Op: expr.EQ, L: &expr.Col{Name: "a"}, R: expr.Int(1)}
	if got := s.MatchSketchJoins(req2, []string{"orderproducts.order_id"}, ""); len(got) != 0 {
		t.Fatal("filtered query matched unfiltered sketch")
	}
}

func TestDescriptorLabels(t *testing.T) {
	d := baseDesc()
	d.ID = 3
	if d.Label() == "" || d.IdentityKey() == "" {
		t.Fatal("labels must render")
	}
	if LocBuffer.String() != "buffer" || LocNone.String() != "none" || LocWarehouse.String() != "warehouse" {
		t.Fatal("location strings")
	}
	var val storage.Value
	_ = val // keep storage import for the helper above
}
