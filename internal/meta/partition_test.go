package meta

import (
	"testing"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
)

// internPart interns a uniform-sample descriptor scoped to one partition of
// the table.
func internPart(s *Store, table string, part int) *Entry {
	e := s.Intern(Descriptor{
		Kind:      plan.UniformSample,
		Sig:       plan.Signature{Tables: []string{table}},
		P:         0.1,
		Partition: part,
		Accuracy:  stats.DefaultAccuracy,
	})
	// Matching only considers materialized synopses.
	s.SetLocation(e.Desc.ID, LocBuffer)
	return e
}

// TestPartitionScopedStaleness: an append that lands entirely in the tail
// partition leaves the sibling partitions' synopses at staleness 0 — the
// regression the partition-scoped freshness epochs exist to prevent (the
// whole-table path would have marked every synopsis of the relation).
func TestPartitionScopedStaleness(t *testing.T) {
	s := NewStore()
	// sales tiled as [400, 400, 200]; per-partition samples built fresh.
	s.ObserveVersion("sales", 0, 1000)
	s.ObservePartitions("sales", []int64{400, 400, 200})
	var ids [3]uint64
	for p := 1; p <= 3; p++ {
		e := internPart(s, "sales", p)
		ids[p-1] = e.Desc.ID
		rows := int64(400)
		if p == 3 {
			rows = 200
		}
		s.SetFreshness(ids[p-1], 0, map[string]int64{"sales": rows})
	}

	// 100 rows land in the tail: [400, 400, 300].
	s.PublishAppendParts("sales", 1, 1100, 100, []int64{400, 400, 300})

	if got := s.Staleness(ids[0]); got != 0 {
		t.Fatalf("partition 1 staleness = %v, want 0 (append landed in tail)", got)
	}
	if got := s.Staleness(ids[1]); got != 0 {
		t.Fatalf("partition 2 staleness = %v, want 0 (append landed in tail)", got)
	}
	if got, want := s.Staleness(ids[2]), 100.0/300.0; got != want {
		t.Fatalf("tail partition staleness = %v, want %v", got, want)
	}

	// An append that opens a NEW partition: [400, 400, 400, 100]. The old
	// tail absorbed 100 more rows, the new partition is nobody's scope yet.
	s.PublishAppendParts("sales", 2, 1300, 200, []int64{400, 400, 400, 100})
	if got := s.Staleness(ids[0]); got != 0 {
		t.Fatalf("partition 1 staleness after growth = %v, want 0", got)
	}
	if got, want := s.Staleness(ids[2]), 200.0/400.0; got != want {
		t.Fatalf("partition 3 staleness after growth = %v, want %v", got, want)
	}
}

// TestPartitionPendingAttribution: in-flight rows (marked unseen but not yet
// published into a layout) burden only the tail partition — they can land
// nowhere else — plus any synopsis whose table has no known layout.
func TestPartitionPendingAttribution(t *testing.T) {
	s := NewStore()
	s.ObserveVersion("sales", 0, 1000)
	s.ObservePartitions("sales", []int64{500, 500})
	head := internPart(s, "sales", 1)
	tail := internPart(s, "sales", 2)
	s.SetFreshness(head.Desc.ID, 0, map[string]int64{"sales": 500})
	s.SetFreshness(tail.Desc.ID, 0, map[string]int64{"sales": 500})

	s.MarkUnseen("sales", 250)
	if got := s.Staleness(head.Desc.ID); got != 0 {
		t.Fatalf("head partition charged for pending rows: %v", got)
	}
	if got, want := s.Staleness(tail.Desc.ID), 250.0/750.0; got != want {
		t.Fatalf("tail pending staleness = %v, want %v", got, want)
	}
	// Publishing the layout moves the charge from pending to concrete.
	s.PublishAppendParts("sales", 1, 1250, 250, []int64{500, 750})
	if got := s.Staleness(head.Desc.ID); got != 0 {
		t.Fatalf("head partition stale after publish: %v", got)
	}
	if got, want := s.Staleness(tail.Desc.ID), 250.0/750.0; got != want {
		t.Fatalf("tail published staleness = %v, want %v", got, want)
	}
}

// TestMatchSamplePartitionsCompleteSet: a cross-partition aggregate can only
// be answered when EVERY partition has a usable sample; a partial set (or a
// whole-table requirement) must not match partition-scoped entries.
func TestMatchSamplePartitionsCompleteSet(t *testing.T) {
	s := NewStore()
	req := Requirements{
		Sig:      plan.Signature{Tables: []string{"sales"}},
		Accuracy: stats.DefaultAccuracy,
	}

	// Partitions 1 and 3 of 3 materialized: incomplete, no match.
	internPart(s, "sales", 1)
	internPart(s, "sales", 3)
	if ms := s.MatchSamplePartitions(req, 3); ms != nil {
		t.Fatalf("incomplete partition set matched: %v", ms)
	}

	// Partition 2 arrives: complete set, matches in partition order.
	internPart(s, "sales", 2)
	ms := s.MatchSamplePartitions(req, 3)
	if len(ms) != 3 {
		t.Fatalf("complete set match = %d entries, want 3", len(ms))
	}
	for i, m := range ms {
		if m.Entry.Desc.Partition != i+1 {
			t.Fatalf("match %d is partition %d, want %d", i, m.Entry.Desc.Partition, i+1)
		}
	}

	// Partition-scoped entries never serve a whole-table requirement.
	if ms := s.MatchSamples(req); len(ms) != 0 {
		t.Fatalf("whole-table requirement matched partition-scoped entries: %v", ms)
	}
}
