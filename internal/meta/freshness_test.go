package meta

import (
	"math"
	"testing"

	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
)

func internOver(s *Store, tables ...string) *Entry {
	return s.Intern(Descriptor{
		Kind:     plan.DistinctSample,
		Sig:      plan.Signature{Tables: tables},
		Accuracy: stats.DefaultAccuracy,
	})
}

func TestStalenessLifecycle(t *testing.T) {
	s := NewStore()
	e := internOver(s, "sales")
	id := e.Desc.ID

	// Fresh build over 1000 rows at epoch 0.
	s.SetFreshness(id, 0, map[string]int64{"sales": 1000})
	if got := s.Staleness(id); got != 0 {
		t.Fatalf("fresh staleness = %v", got)
	}

	// Append 250 rows: staleness = 250/1250.
	s.ObserveVersion("sales", 1, 1250)
	if got, want := s.Staleness(id), 250.0/1250.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("staleness = %v, want %v", got, want)
	}
	if ep, rows, ok := s.TableVersion("sales"); !ok || ep != 1 || rows != 1250 {
		t.Fatalf("table version = (%d, %d, %v)", ep, rows, ok)
	}

	// A rebuild over the grown table resets staleness.
	s.SetFreshness(id, 1, map[string]int64{"sales": 1250})
	if got := s.Staleness(id); got != 0 {
		t.Fatalf("refreshed staleness = %v", got)
	}

	// Appends to unrelated tables do not mark it.
	s.ObserveVersion("orders", 1, 500)
	if got := s.Staleness(id); got != 0 {
		t.Fatalf("unrelated append marked synopsis: %v", got)
	}
}

func TestStalenessZeroDenominator(t *testing.T) {
	s := NewStore()
	e := internOver(s, "empty")
	id := e.Desc.ID
	// Built over an empty relation, then rows arrive: fully stale, and the
	// staleness math must not divide by zero.
	s.SetFreshness(id, 0, map[string]int64{"empty": 0})
	if got := s.Staleness(id); got != 0 {
		t.Fatalf("empty-over-empty staleness = %v", got)
	}
	s.ObserveVersion("empty", 1, 10)
	if got := s.Staleness(id); got != 1 {
		t.Fatalf("staleness after rows arrived = %v, want 1", got)
	}
}

func TestSetFreshnessAbsorbsRacedAppend(t *testing.T) {
	s := NewStore()
	e := internOver(s, "sales")
	id := e.Desc.ID
	// The append is observed before the (older) build is admitted: the gap
	// between observed rows and the build's source rows must survive as
	// unseen rows rather than the synopsis being reported fresh.
	s.ObserveVersion("sales", 1, 1200)
	s.SetFreshness(id, 0, map[string]int64{"sales": 1000})
	if got, want := s.Staleness(id), 200.0/1200.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("staleness = %v, want %v", got, want)
	}
}

func TestSetFreshnessAbsorbsRacedAppendMultiTable(t *testing.T) {
	s := NewStore()
	e := internOver(s, "a", "b")
	id := e.Desc.ID
	// An append into one of a join synopsis' source tables is observed
	// before the build admits: the per-table gap must survive the reset.
	s.ObserveVersion("a", 1, 1150)
	s.SetFreshness(id, 0, map[string]int64{"a": 1000, "b": 2000})
	if got, want := s.Staleness(id), 150.0/3150.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("staleness = %v, want %v", got, want)
	}
}

func TestMarkUnseenBeforePublish(t *testing.T) {
	s := NewStore()
	e := internOver(s, "sales")
	id := e.Desc.ID
	s.SetFreshness(id, 0, map[string]int64{"sales": 1000})
	// The engine pre-marks before the catalog swap; a failed append rolls
	// back (clamped at zero).
	s.MarkUnseen("sales", 100)
	if got := s.Staleness(id); got <= 0 {
		t.Fatalf("pre-mark not visible: %v", got)
	}
	s.MarkUnseen("sales", -100)
	if got := s.Staleness(id); got != 0 {
		t.Fatalf("rollback left staleness %v", got)
	}
	s.MarkUnseen("sales", -50)
	if got := s.Staleness(id); got != 0 {
		t.Fatalf("over-rollback went negative: %v", got)
	}
}

func TestStalenessMultiTableAccumulates(t *testing.T) {
	s := NewStore()
	e := internOver(s, "a", "b")
	id := e.Desc.ID
	s.SetFreshness(id, 0, map[string]int64{"a": 1000, "b": 1000})
	s.ObserveVersion("a", 1, 1100)
	s.ObserveVersion("b", 1, 1300)
	if got, want := s.Staleness(id), 400.0/2400.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("staleness = %v, want %v", got, want)
	}
}
