// Package meta implements Taster's synopsis-centric metadata store
// (paper §III): descriptors for every synopsis that ever appeared in a
// candidate plan (materialized or not), per-synopsis lists of recent queries
// that could exploit it with their estimated costs, and the base-relation
// index plus subsumption matcher used to map query subplans onto
// materialized synopses (paper §IV-A).
package meta

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
)

// Location says where a synopsis currently lives.
type Location uint8

// Synopsis locations.
const (
	LocNone      Location = iota // candidate only, never materialized (or evicted)
	LocBuffer                    // in-memory synopsis buffer
	LocWarehouse                 // persistent synopsis warehouse
)

// String returns the location name.
func (l Location) String() string {
	return [...]string{"none", "buffer", "warehouse"}[l]
}

// Descriptor is the logical definition of a synopsis: the subplan it
// summarizes plus its configuration and accuracy (paper §III metadata items
// (a) and (b)).
type Descriptor struct {
	ID   uint64
	Kind plan.SynopsisKind

	// Sig identifies the summarized subplan (tables, join preds, filters,
	// output columns).
	Sig plan.Signature
	// FilterPred is the subplan's filter conjunction, kept as an expression
	// for implication checks during subsumption.
	FilterPred expr.Expr

	// Sample configuration.
	StratCols []string
	P         float64
	Delta     int

	// Sketch-join configuration.
	BuildKeys []string
	AggCol    string

	// AggCols are the columns aggregated by the creating query; a sample
	// sized for these columns' variance serves queries aggregating a subset.
	AggCols []string

	Accuracy stats.AccuracySpec

	// EstSizeBytes is the planner's size estimate before the synopsis
	// exists; ActualSize replaces it after materialization.
	EstSizeBytes int64
	ActualSize   int64

	Location Location
	// Pinned synopses come from user hints and are never evicted (§V).
	Pinned bool
}

// SizeBytes returns the best known size (actual if materialized).
func (d *Descriptor) SizeBytes() int64 {
	if d.ActualSize > 0 {
		return d.ActualSize
	}
	return d.EstSizeBytes
}

// IdentityKey distinguishes synopses of the same subplan with different
// kinds/configurations, used to dedupe candidate descriptors across queries.
func (d *Descriptor) IdentityKey() string {
	return fmt.Sprintf("%s|%s|A=[%s]|agg=%s|aggs=[%s]|acc=%.4f@%.4f",
		d.Kind, d.Sig.Key(), strings.Join(d.StratCols, ","), d.AggCol,
		strings.Join(d.AggCols, ","), d.Accuracy.RelError, d.Accuracy.Confidence)
}

// Label is a short human-readable name for logs.
func (d *Descriptor) Label() string {
	return fmt.Sprintf("#%d %s over %s", d.ID, d.Kind, strings.Join(d.Sig.Tables, "⋈"))
}

// QueryBenefit records what one query would save if the synopsis existed
// (paper §III metadata item (d)).
type QueryBenefit struct {
	QueryID   int
	CostWith  float64 // estimated cost of the best plan using this synopsis
	CostExact float64 // estimated cost of the exact (no-synopsis) plan
}

// Gain returns the non-negative saving.
func (b QueryBenefit) Gain() float64 {
	if g := b.CostExact - b.CostWith; g > 0 {
		return g
	}
	return 0
}

// Entry couples a descriptor with its recent-query benefit list.
type Entry struct {
	Desc     Descriptor
	Benefits []QueryBenefit
}

// BenefitFor returns the benefit recorded for a specific query (ok=false if
// the query cannot use this synopsis).
func (e *Entry) BenefitFor(queryID int) (QueryBenefit, bool) {
	for i := len(e.Benefits) - 1; i >= 0; i-- {
		if e.Benefits[i].QueryID == queryID {
			return e.Benefits[i], true
		}
	}
	return QueryBenefit{}, false
}

// snapshot returns a copy of the entry that is safe to read after the store
// lock is released: descriptor scalars are copied and the benefit list is
// cloned. Descriptor slices (StratCols, AggCols, ...) are never mutated
// after Intern, so sharing them is safe. Read accessors return snapshots so
// concurrent planners (which append benefits and flip locations) never race
// with the tuner walking the universe.
func (e *Entry) snapshot() *Entry {
	return &Entry{Desc: e.Desc, Benefits: append([]QueryBenefit(nil), e.Benefits...)}
}

// Store is the concurrency-safe metadata repository.
type Store struct {
	mu         sync.RWMutex
	nextID     uint64
	byID       map[uint64]*Entry
	byIdentity map[string]uint64
	byIndexKey map[string][]uint64
}

// NewStore returns an empty metadata store.
func NewStore() *Store {
	return &Store{
		byID:       make(map[uint64]*Entry),
		byIdentity: make(map[string]uint64),
		byIndexKey: make(map[string][]uint64),
	}
}

// Intern registers a candidate descriptor, returning a snapshot of the
// existing entry when an identical synopsis (same subplan, kind and
// configuration) was seen before. The returned entry's descriptor carries
// the assigned ID.
func (s *Store) Intern(d Descriptor) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := d.IdentityKey()
	if id, ok := s.byIdentity[key]; ok {
		return s.byID[id].snapshot()
	}
	s.nextID++
	d.ID = s.nextID
	e := &Entry{Desc: d}
	s.byID[d.ID] = e
	s.byIdentity[key] = d.ID
	ik := d.Sig.IndexKey()
	s.byIndexKey[ik] = append(s.byIndexKey[ik], d.ID)
	return e.snapshot()
}

// Get returns a snapshot of the entry for id.
func (s *Store) Get(id uint64) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return e.snapshot(), true
}

// RecordBenefit appends a query-benefit observation for the synopsis,
// keeping at most keep entries (the tuner's window upper bound).
func (s *Store) RecordBenefit(id uint64, b QueryBenefit, keep int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return
	}
	e.Benefits = append(e.Benefits, b)
	if keep > 0 && len(e.Benefits) > keep {
		e.Benefits = e.Benefits[len(e.Benefits)-keep:]
	}
}

// SetLocation updates where the synopsis lives.
func (s *Store) SetLocation(id uint64, loc Location) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byID[id]; ok {
		e.Desc.Location = loc
	}
}

// SetActualSize records the measured size after materialization.
func (s *Store) SetActualSize(id uint64, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byID[id]; ok {
		e.Desc.ActualSize = size
	}
}

// SetPinned marks a synopsis as pinned (user hints) or not.
func (s *Store) SetPinned(id uint64, pinned bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byID[id]; ok {
		e.Desc.Pinned = pinned
	}
}

// Entries returns snapshots of all entries sorted by ID (a stable,
// race-free view for the tuner).
func (s *Store) Entries() []*Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Entry, 0, len(s.byID))
	for _, e := range s.byID {
		out = append(out, e.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Desc.ID < out[j].Desc.ID })
	return out
}

// Materialized returns entries currently in the buffer or warehouse.
func (s *Store) Materialized() []*Entry {
	all := s.Entries()
	out := all[:0:0]
	for _, e := range all {
		if e.Desc.Location != LocNone {
			out = append(out, e)
		}
	}
	return out
}

// lookupIndex returns entries sharing the coarse base-relations/join key —
// the index that "effectively limits the search space" (paper §IV-A).
func (s *Store) lookupIndex(indexKey string) []*Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.byIndexKey[indexKey]
	out := make([]*Entry, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.byID[id].snapshot())
	}
	return out
}
