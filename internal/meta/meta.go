// Package meta implements Taster's synopsis-centric metadata store
// (paper §III): descriptors for every synopsis that ever appeared in a
// candidate plan (materialized or not), per-synopsis lists of recent queries
// that could exploit it with their estimated costs, and the base-relation
// index plus subsumption matcher used to map query subplans onto
// materialized synopses (paper §IV-A).
package meta

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/tasterdb/taster/internal/expr"
	"github.com/tasterdb/taster/internal/plan"
	"github.com/tasterdb/taster/internal/stats"
)

// Location says where a synopsis currently lives.
type Location uint8

// Synopsis locations.
const (
	LocNone      Location = iota // candidate only, never materialized (or evicted)
	LocBuffer                    // in-memory synopsis buffer
	LocWarehouse                 // persistent synopsis warehouse
)

// String returns the location name.
func (l Location) String() string {
	return [...]string{"none", "buffer", "warehouse"}[l]
}

// Descriptor is the logical definition of a synopsis: the subplan it
// summarizes plus its configuration and accuracy (paper §III metadata items
// (a) and (b)).
type Descriptor struct {
	ID   uint64
	Kind plan.SynopsisKind

	// Sig identifies the summarized subplan (tables, join preds, filters,
	// output columns).
	Sig plan.Signature
	// FilterPred is the subplan's filter conjunction, kept as an expression
	// for implication checks during subsumption.
	FilterPred expr.Expr

	// Sample configuration.
	StratCols []string
	P         float64
	Delta     int

	// Sketch-join configuration.
	BuildKeys []string
	AggCol    string

	// AggCols are the columns aggregated by the creating query; a sample
	// sized for these columns' variance serves queries aggregating a subset.
	AggCols []string

	// Partition scopes the synopsis to one partition of its (single) base
	// relation: 1-based partition index, 0 = whole table. Partition-scoped
	// synopses have partition-scoped freshness — an append that lands in a
	// different partition leaves them at staleness 0 — and serve queries
	// only as a complete per-partition set merged in partition order.
	Partition int

	Accuracy stats.AccuracySpec

	// EstSizeBytes is the planner's size estimate before the synopsis
	// exists; ActualSize replaces it after materialization.
	EstSizeBytes int64
	ActualSize   int64

	Location Location
	// Pinned synopses come from user hints and are never evicted (§V).
	Pinned bool

	// BuildEpoch is the summed epoch counter of the source tables at the
	// moment the synopsis was materialized; a later admit with a higher
	// source epoch is a refresh and replaces the stored copy.
	BuildEpoch uint64
	// BuildRows is the number of source rows the synopsis summarized at
	// build time — the staleness denominator, summed over the source
	// tables' row counts as bound into the build plan (recorded at admit
	// time, so staleness math never divides by zero).
	BuildRows int64
}

// SizeBytes returns the best known size (actual if materialized).
func (d *Descriptor) SizeBytes() int64 {
	if d.ActualSize > 0 {
		return d.ActualSize
	}
	return d.EstSizeBytes
}

// IdentityKey distinguishes synopses of the same subplan with different
// kinds/configurations, used to dedupe candidate descriptors across queries.
func (d *Descriptor) IdentityKey() string {
	key := fmt.Sprintf("%s|%s|A=[%s]|agg=%s|aggs=[%s]|acc=%.4f@%.4f",
		d.Kind, d.Sig.Key(), strings.Join(d.StratCols, ","), d.AggCol,
		strings.Join(d.AggCols, ","), d.Accuracy.RelError, d.Accuracy.Confidence)
	if d.Partition > 0 {
		key += fmt.Sprintf("|part=%d", d.Partition)
	}
	return key
}

// Label is a short human-readable name for logs.
func (d *Descriptor) Label() string {
	return fmt.Sprintf("#%d %s over %s", d.ID, d.Kind, strings.Join(d.Sig.Tables, "⋈"))
}

// QueryBenefit records what one query would save if the synopsis existed
// (paper §III metadata item (d)).
type QueryBenefit struct {
	QueryID   int
	CostWith  float64 // estimated cost of the best plan using this synopsis
	CostExact float64 // estimated cost of the exact (no-synopsis) plan
}

// Gain returns the non-negative saving.
func (b QueryBenefit) Gain() float64 {
	if g := b.CostExact - b.CostWith; g > 0 {
		return g
	}
	return 0
}

// Entry couples a descriptor with its recent-query benefit list and
// freshness bookkeeping.
type Entry struct {
	Desc     Descriptor
	Benefits []QueryBenefit
	// UnseenRows counts source rows appended after the synopsis was built.
	// It is *derived* — per source table, the excess of the observed (or
	// in-flight) row count over what the build scanned — and computed into
	// snapshots at read time: no mutation ordering between ingests and
	// admits can erase it.
	UnseenRows int64
	// builtBy records the per-table row counts the synopsis summarized
	// (set by SetFreshness; nil until first materialization). The map is
	// replaced wholesale, never mutated, so snapshots may share it.
	builtBy map[string]int64
}

// Staleness returns the fraction of current source rows the synopsis has
// never seen: unseen / (built + unseen), in [0, 1]. A synopsis over an
// empty-at-build relation that has since received rows is fully stale (1).
// Valid on snapshots (where UnseenRows was derived at read time); for live
// entries use Store.Staleness.
func (e *Entry) Staleness() float64 {
	return stalenessFrom(e.Desc.BuildRows, e.UnseenRows)
}

func stalenessFrom(buildRows, unseen int64) float64 {
	if unseen <= 0 {
		return 0
	}
	denom := buildRows + unseen
	if denom <= 0 {
		return 0
	}
	return float64(unseen) / float64(denom)
}

// BuiltByTable returns the per-table source row counts the synopsis was
// built from (nil before first materialization). The map is replaced
// wholesale on refresh and never mutated, so callers must treat it as
// read-only.
func (e *Entry) BuiltByTable() map[string]int64 { return e.builtBy }

// BenefitFor returns the benefit recorded for a specific query (ok=false if
// the query cannot use this synopsis).
func (e *Entry) BenefitFor(queryID int) (QueryBenefit, bool) {
	for i := len(e.Benefits) - 1; i >= 0; i-- {
		if e.Benefits[i].QueryID == queryID {
			return e.Benefits[i], true
		}
	}
	return QueryBenefit{}, false
}

// snap returns a copy of the entry that is safe to read after the store
// lock is released: descriptor scalars are copied, the benefit list is
// cloned, and the derived unseen-row count is computed in. Descriptor
// slices (StratCols, AggCols, ...) are never mutated after Intern, so
// sharing them is safe. Read accessors return snapshots so concurrent
// planners (which append benefits and flip locations) never race with the
// tuner walking the universe. Caller holds at least the read lock.
func (s *Store) snap(e *Entry) *Entry {
	return &Entry{
		Desc:       e.Desc,
		Benefits:   append([]QueryBenefit(nil), e.Benefits...),
		UnseenRows: s.unseenLocked(e),
		builtBy:    e.builtBy,
	}
}

// unseenLocked derives the source rows the synopsis has never seen: per
// source table, the excess of the observed row count (plus rows of any
// append currently in flight, see MarkUnseen) over what the build scanned.
// Partition-scoped synopses compare against their partition's observed row
// count instead, so an append landing elsewhere contributes nothing.
// Caller holds at least the read lock.
func (s *Store) unseenLocked(e *Entry) int64 {
	if e.Desc.Partition > 0 {
		return s.unseenPartitionLocked(e, e.Desc.Partition)
	}
	var unseen int64
	for t, built := range e.builtBy {
		cur := built
		if v, ok := s.tables[t]; ok && v.rows > cur {
			cur = v.rows
		}
		cur += s.pending[t]
		if cur > built {
			unseen += cur - built
		}
	}
	return unseen
}

// unseenPartitionLocked is the partition-scoped staleness derivation: the
// gap between the observed row count of partition p (1-based) and what the
// build scanned. Appends only ever land in the tail partition (and open new
// ones past it), so in-flight pending rows count against p only when p is
// the tail or beyond — sibling partitions stay at zero unseen rows through
// the entire publish window. When the table's partition layout has never
// been observed, pending rows count conservatively.
func (s *Store) unseenPartitionLocked(e *Entry, p int) int64 {
	var unseen int64
	for t, built := range e.builtBy {
		cur := built
		layout, known := s.parts[t]
		if known && p <= len(layout) {
			if layout[p-1] > cur {
				cur = layout[p-1]
			}
			if p == len(layout) {
				cur += s.pending[t]
			}
		} else {
			cur += s.pending[t]
		}
		if cur > built {
			unseen += cur - built
		}
	}
	return unseen
}

// tableVersion is the last observed state of a base relation.
type tableVersion struct {
	epoch uint64
	rows  int64
}

// Store is the concurrency-safe metadata repository.
type Store struct {
	mu         sync.RWMutex
	nextID     uint64
	byID       map[uint64]*Entry
	byIdentity map[string]uint64
	byIndexKey map[string][]uint64
	// tables tracks the last published epoch and row count of every
	// ingested base relation (updated by ObserveVersion); pending counts
	// rows of appends that are marked but not yet published (MarkUnseen).
	// Staleness derives from both, so a query racing the publish window
	// sees affected synopses as stale, never as fresh.
	tables  map[string]tableVersion
	pending map[string]int64
	// parts tracks the last observed per-partition row counts of each base
	// relation (partition order). Partition-scoped synopses derive their
	// staleness from it; it is replaced wholesale on publish, never mutated,
	// so snapshots may share it.
	parts map[string][]int64
}

// NewStore returns an empty metadata store.
func NewStore() *Store {
	return &Store{
		byID:       make(map[uint64]*Entry),
		byIdentity: make(map[string]uint64),
		byIndexKey: make(map[string][]uint64),
		tables:     make(map[string]tableVersion),
		pending:    make(map[string]int64),
		parts:      make(map[string][]int64),
	}
}

// Intern registers a candidate descriptor, returning a snapshot of the
// existing entry when an identical synopsis (same subplan, kind and
// configuration) was seen before. The returned entry's descriptor carries
// the assigned ID.
func (s *Store) Intern(d Descriptor) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := d.IdentityKey()
	if id, ok := s.byIdentity[key]; ok {
		return s.snap(s.byID[id])
	}
	s.nextID++
	d.ID = s.nextID
	e := &Entry{Desc: d}
	s.byID[d.ID] = e
	s.byIdentity[key] = d.ID
	ik := d.Sig.IndexKey()
	s.byIndexKey[ik] = append(s.byIndexKey[ik], d.ID)
	return s.snap(e)
}

// Restore reinstates a recovered entry under its original ID — the warm-
// restart path replaying a persisted manifest. Unlike Intern it preserves
// the descriptor verbatim (location, sizes, freshness, pin) and installs
// the benefit history and per-table build rows; the ID allocator advances
// past the restored ID so later interns never collide. Restoring an ID or
// identity that already exists is an error: recovery runs against an empty
// store.
func (s *Store) Restore(d Descriptor, benefits []QueryBenefit, builtByTable map[string]int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.ID == 0 {
		return fmt.Errorf("meta: restore: entry without an ID")
	}
	if _, dup := s.byID[d.ID]; dup {
		return fmt.Errorf("meta: restore: synopsis #%d already present", d.ID)
	}
	key := d.IdentityKey()
	if prev, dup := s.byIdentity[key]; dup {
		return fmt.Errorf("meta: restore: identity of #%d already held by #%d", d.ID, prev)
	}
	e := &Entry{Desc: d, Benefits: append([]QueryBenefit(nil), benefits...)}
	if len(builtByTable) > 0 {
		built := make(map[string]int64, len(builtByTable))
		for t, rows := range builtByTable {
			built[t] = rows
		}
		e.builtBy = built
	}
	s.byID[d.ID] = e
	s.byIdentity[key] = d.ID
	ik := d.Sig.IndexKey()
	s.byIndexKey[ik] = append(s.byIndexKey[ik], d.ID)
	if d.ID > s.nextID {
		s.nextID = d.ID
	}
	return nil
}

// NextID returns the ID allocator's high-water mark (the last assigned ID);
// checkpoints persist it so a restarted store never reuses an ID.
func (s *Store) NextID() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextID
}

// SeedNextID raises the ID allocator floor (no-op if the store has already
// advanced past it).
func (s *Store) SeedNextID(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.nextID {
		s.nextID = n
	}
}

// TableState is an observed base-relation version, exported for
// checkpointing.
type TableState struct {
	Epoch uint64
	Rows  int64
}

// TableVersions returns a copy of every observed base-relation version.
func (s *Store) TableVersions() map[string]TableState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]TableState, len(s.tables))
	for t, v := range s.tables {
		out[t] = TableState{Epoch: v.epoch, Rows: v.rows}
	}
	return out
}

// Get returns a snapshot of the entry for id.
func (s *Store) Get(id uint64) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return s.snap(e), true
}

// RecordBenefit appends a query-benefit observation for the synopsis,
// keeping at most keep entries (the tuner's window upper bound).
func (s *Store) RecordBenefit(id uint64, b QueryBenefit, keep int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return
	}
	e.Benefits = append(e.Benefits, b)
	if keep > 0 && len(e.Benefits) > keep {
		e.Benefits = e.Benefits[len(e.Benefits)-keep:]
	}
}

// SetLocation updates where the synopsis lives.
func (s *Store) SetLocation(id uint64, loc Location) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byID[id]; ok {
		e.Desc.Location = loc
	}
}

// SetActualSize records the measured size after materialization.
func (s *Store) SetActualSize(id uint64, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byID[id]; ok {
		e.Desc.ActualSize = size
	}
}

// SetFreshness records the source state a synopsis was (re)built from: the
// summed epoch of its source tables and the per-table row counts it
// summarized. Staleness is derived, not stored: for every source table
// whose observed (or in-flight) row count exceeds what this build scanned
// — an append that raced the admit, join samples and sketches included —
// the gap surfaces automatically, regardless of the order this call
// interleaves with MarkUnseen/ObserveVersion.
func (s *Store) SetFreshness(id uint64, epoch uint64, builtByTable map[string]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return
	}
	e.Desc.BuildEpoch = epoch
	e.Desc.BuildRows = 0
	built := make(map[string]int64, len(builtByTable))
	for t, rows := range builtByTable {
		e.Desc.BuildRows += rows
		built[t] = rows
	}
	e.builtBy = built
}

// MarkUnseen registers addedRows of in-flight appended data on a table.
// The engine calls it BEFORE publishing the appended table version: a
// concurrent query then sees either old data with stale-marked synopses
// (harmlessly conservative) or new data with stale-marked synopses —
// never new data with synopses still reported fresh. Negative addedRows
// releases the mark (publish completed or append failed; clamped at zero).
func (s *Store) MarkUnseen(table string, addedRows int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[table] += addedRows; s.pending[table] <= 0 {
		delete(s.pending, table)
	}
}

// ObserveVersion records a published table version; synopsis staleness
// derives from the gap between it and each synopsis' recorded build rows.
func (s *Store) ObserveVersion(table string, epoch uint64, totalRows int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observeVersionLocked(table, epoch, totalRows)
}

func (s *Store) observeVersionLocked(table string, epoch uint64, totalRows int64) {
	// Concurrent ingests can report here out of order; never let an older
	// observation regress the tracked version.
	if prev, ok := s.tables[table]; !ok || epoch > prev.epoch ||
		(epoch == prev.epoch && totalRows > prev.rows) {
		s.tables[table] = tableVersion{epoch: epoch, rows: totalRows}
	}
}

// PublishAppend atomically records a published table version AND releases
// the in-flight mark of the append that produced it. Doing both under one
// lock ensures no reader ever sees the appended rows counted twice (once
// in the observed gap, once in pending).
func (s *Store) PublishAppend(table string, epoch uint64, totalRows, addedRows int64) {
	s.PublishAppendParts(table, epoch, totalRows, addedRows, nil)
}

// PublishAppendParts is PublishAppend carrying the new version's partition
// layout (per-partition row counts in partition order; nil = unknown).
// Recording the layout in the same critical section keeps partition-scoped
// staleness consistent with whole-table staleness at every instant.
func (s *Store) PublishAppendParts(table string, epoch uint64, totalRows, addedRows int64, partRows []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observeVersionLocked(table, epoch, totalRows)
	s.observePartitionsLocked(table, partRows)
	if s.pending[table] -= addedRows; s.pending[table] <= 0 {
		delete(s.pending, table)
	}
}

// ObservePartitions records a base relation's partition layout (per-
// partition row counts in partition order). The engine calls it at open and
// whenever it pins per-partition synopses, so partition-scoped staleness
// never has to fall back to the conservative layout-unknown path.
func (s *Store) ObservePartitions(table string, partRows []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observePartitionsLocked(table, partRows)
}

func (s *Store) observePartitionsLocked(table string, partRows []int64) {
	if partRows == nil {
		return
	}
	// Appends only grow the layout (more partitions, or more rows in the
	// tail); never let an out-of-order report regress it.
	var total, prevTotal int64
	for _, r := range partRows {
		total += r
	}
	prev := s.parts[table]
	for _, r := range prev {
		prevTotal += r
	}
	if len(partRows) > len(prev) || (len(partRows) == len(prev) && total >= prevTotal) {
		s.parts[table] = append([]int64(nil), partRows...)
	}
}

// PartitionLayout returns the last observed per-partition row counts of a
// base relation (nil when never observed). Read-only for callers.
func (s *Store) PartitionLayout(table string) []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.parts[table]
}

// Staleness returns the fraction of source rows the synopsis has not seen
// (0 = fully fresh, 1 = built before any of the current rows existed).
func (s *Store) Staleness(id uint64) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.byID[id]
	if !ok {
		return 0
	}
	return stalenessFrom(e.Desc.BuildRows, s.unseenLocked(e))
}

// StalenessOf returns the staleness fraction of every given synopsis in a
// single consistent read: one lock hold covers all ids, so the returned
// values reflect the same instant of the table-version/pending state. The
// engine's tuning-snapshot publish uses it so the lock-free serving path
// reads freshness that is mutually consistent with the published synopsis
// locations, instead of racing per-id lookups against concurrent ingests.
// Unknown ids are omitted.
func (s *Store) StalenessOf(ids []uint64) map[uint64]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[uint64]float64, len(ids))
	for _, id := range ids {
		if e, ok := s.byID[id]; ok {
			out[id] = stalenessFrom(e.Desc.BuildRows, s.unseenLocked(e))
		}
	}
	return out
}

// TableVersion returns the last observed (epoch, rows) of a base relation;
// ok is false when the relation was never ingested into.
func (s *Store) TableVersion(table string) (epoch uint64, rows int64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, found := s.tables[table]
	return v.epoch, v.rows, found
}

// SetPinned marks a synopsis as pinned (user hints) or not.
func (s *Store) SetPinned(id uint64, pinned bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byID[id]; ok {
		e.Desc.Pinned = pinned
	}
}

// Entries returns snapshots of all entries sorted by ID (a stable,
// race-free view for the tuner).
func (s *Store) Entries() []*Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Entry, 0, len(s.byID))
	for _, e := range s.byID {
		out = append(out, s.snap(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Desc.ID < out[j].Desc.ID })
	return out
}

// Materialized returns entries currently in the buffer or warehouse.
func (s *Store) Materialized() []*Entry {
	all := s.Entries()
	out := all[:0:0]
	for _, e := range all {
		if e.Desc.Location != LocNone {
			out = append(out, e)
		}
	}
	return out
}

// lookupIndex returns entries sharing the coarse base-relations/join key —
// the index that "effectively limits the search space" (paper §IV-A).
func (s *Store) lookupIndex(indexKey string) []*Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.byIndexKey[indexKey]
	out := make([]*Entry, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.snap(s.byID[id]))
	}
	return out
}
