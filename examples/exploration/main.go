// Exploration: a data-exploration session whose interests shift across
// TPC-H template groups (the paper's Fig. 6 scenario). Watch the tuner
// evict stale synopses and build new ones at each epoch boundary.
package main

import (
	"fmt"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

func main() {
	w := workload.TPCH(0.004, 11)
	bytes, rows := w.CostScale()
	eng := core.New(w.Catalog, core.Config{
		Mode:          core.ModeTaster,
		StorageBudget: int64(float64(bytes) * 0.12), // ≈ the paper's 35 GB/300 GB
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          11,
		Synchronous:   true, // deterministic demo narrative
	})

	for epoch := 1; epoch <= 4; epoch++ {
		fmt.Printf("=== epoch %d: templates %v ===\n", epoch, workload.TPCHEpoch(epoch))
		queries := w.QueriesFromTemplates(workload.TPCHEpoch(epoch), 10, int64(epoch))
		for i, sql := range queries {
			q, err := sqlparser.Parse(sql, w.Catalog)
			if err != nil {
				panic(err)
			}
			res, err := eng.Execute(q)
			if err != nil {
				panic(err)
			}
			rep := res.Report
			marker := ""
			if len(rep.Evicted) > 0 {
				marker += fmt.Sprintf(" evicted %d", len(rep.Evicted))
			}
			if len(rep.CreatedSynopses) > 0 {
				marker += fmt.Sprintf(" built %v", rep.CreatedSynopses)
			}
			if len(rep.UsedSynopses) > 0 {
				marker += fmt.Sprintf(" reused %v", rep.UsedSynopses)
			}
			fmt.Printf("  q%02d %-42s sim=%6.1fs warehouse=%6.0fKB%s\n",
				i, rep.PlanDesc, rep.SimSeconds,
				float64(rep.WarehouseBytes+rep.BufferBytes)/1e3, marker)
		}
	}
}
