// Grocery: the paper's instacart micro-benchmark (Table I). The four
// "sketch-N" templates group by a join key and collapse into sketch-joins;
// the four "sample-N" templates group on fact columns and use samples.
package main

import (
	"fmt"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

func main() {
	w := workload.Instacart(0.05, 3)
	bytes, rows := w.CostScale()
	eng := core.New(w.Catalog, core.Config{
		Mode:          core.ModeTaster,
		StorageBudget: bytes / 2,
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          3,
		Synchronous:   true, // deterministic demo narrative
	})

	for _, tmpl := range w.Templates {
		queries := w.QueriesFromTemplates([]string{tmpl.Name}, 3, 99)
		var last *core.Result
		for _, sql := range queries {
			q, err := sqlparser.Parse(sql, w.Catalog)
			if err != nil {
				panic(err)
			}
			res, err := eng.Execute(q)
			if err != nil {
				panic(err)
			}
			last = res
		}
		fmt.Printf("%-9s (paper: %-6s) → %-45s rows=%d sim=%.1fs\n",
			tmpl.Name, tmpl.Kind, last.Report.PlanDesc, len(last.Rows), last.Report.SimSeconds)
	}
}
