// Quickstart: build two small tables, run the same approximate join
// aggregate repeatedly, and watch Taster switch from online sampling to
// synopsis reuse — the core loop of the paper.
package main

import (
	"fmt"
	"math/rand"

	taster "github.com/tasterdb/taster"
)

func main() {
	r := rand.New(rand.NewSource(1))
	cat := taster.NewCatalog()

	sales := taster.NewTableBuilder("sales", taster.Schema{
		{Name: "sales.cust", Typ: taster.Int64},
		{Name: "sales.amount", Typ: taster.Float64},
	})
	for i := 0; i < 200000; i++ {
		sales.Int(0, int64(r.Intn(50)))
		sales.Float(1, 10+r.Float64()*990)
	}
	cat.Register(sales.Build(4))

	customers := taster.NewTableBuilder("customers", taster.Schema{
		{Name: "customers.id", Typ: taster.Int64},
		{Name: "customers.region", Typ: taster.String},
	})
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 50; i++ {
		customers.AddRow(
			taster.Value{Typ: taster.Int64, I: int64(i)},
			taster.Value{Typ: taster.String, S: regions[i%len(regions)]})
	}
	cat.Register(customers.Build(1))

	eng := taster.MustOpen(cat, taster.Options{Seed: 7, SimulatedScale: true})

	const sql = `SELECT region, SUM(amount), COUNT(*) FROM sales
		JOIN customers ON sales.cust = customers.id
		GROUP BY region
		ERROR WITHIN 10% AT CONFIDENCE 95%`

	for run := 1; run <= 4; run++ {
		res, err := eng.Query(sql)
		if err != nil {
			panic(err)
		}
		// Tuning runs in the background by default; the barrier lets each
		// run see the previous run's materialization, so the sampling→reuse
		// switch lands on the same run every time.
		eng.Drain()
		fmt.Printf("run %d — plan: %s (simulated %.1fs)\n",
			run, res.Stats.Plan, res.Stats.SimulatedSeconds)
		for i, row := range res.Rows {
			fmt.Printf("  %-6s SUM=%.0f ±%.0f   COUNT=%.0f ±%.0f\n",
				row[0].S,
				res.Intervals[i][0].Estimate, res.Intervals[i][0].HalfWidth,
				res.Intervals[i][1].Estimate, res.Intervals[i][1].HalfWidth)
		}
	}
	fmt.Println("\nmaterialized synopses:")
	for _, s := range eng.Synopses() {
		fmt.Println("  " + s)
	}
}
