// Elastic: an administrator grows and shrinks the synopsis storage budget
// at runtime (the paper's Fig. 9 scenario). The engine retunes on every
// change, evicting the lowest-gain synopses, and queries keep working at
// every budget.
package main

import (
	"fmt"

	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/workload"
)

func main() {
	w := workload.TPCH(0.004, 21)
	bytes, rows := w.CostScale()
	eng := core.New(w.Catalog, core.Config{
		Mode:          core.ModeTaster,
		StorageBudget: bytes / 5,
		BufferSize:    bytes / 8,
		CostModel:     storage.ScaledCostModel(bytes, rows),
		Seed:          21,
		Synchronous:   true, // deterministic demo narrative
	})

	phases := []struct {
		frac  float64
		label string
	}{
		{0.2, "20% budget"}, {0.5, "50% budget"}, {1.0, "100% budget"},
		{0.5, "back to 50%"}, {1.0, "back to 100%"},
	}
	queries := w.Queries(50, 5)
	per := len(queries) / len(phases)

	for pi, ph := range phases {
		eng.SetStorageBudget(int64(float64(bytes) * ph.frac))
		var sim float64
		var reused int
		for _, sql := range queries[pi*per : (pi+1)*per] {
			q, err := sqlparser.Parse(sql, w.Catalog)
			if err != nil {
				panic(err)
			}
			res, err := eng.Execute(q)
			if err != nil {
				panic(err)
			}
			sim += res.Report.SimSeconds
			if len(res.Report.UsedSynopses) > 0 {
				reused++
			}
		}
		_, wh := eng.Warehouse().Usage()
		fmt.Printf("%-13s: %2d/%d queries reused synopses, warehouse %6.0fKB, total sim %.0fs\n",
			ph.label, reused, per, float64(wh)/1e3, sim)
	}
}
