// Package taster is a self-tuning, elastic, online approximate query
// processing engine — a from-scratch Go implementation of "Taster:
// Self-Tuning, Elastic and Online Approximate Query Processing" (Olma,
// Papapetrou, Appuswamy, Ailamaki; ICDE 2019).
//
// Taster answers SQL aggregate queries approximately by injecting samplers
// and sketches into query plans at runtime. The synopses it builds are
// byproducts of query execution: they cost the query nothing extra, land in
// an in-memory buffer, and a tuner decides after every query which of them
// to keep in a quota-bounded warehouse so that future queries reuse them.
// The warehouse adapts continuously to the workload and to runtime storage
// budget changes.
//
// Quick start:
//
//	cat := taster.NewCatalog()
//	// ... register tables via taster.TableBuilder ...
//	eng, err := taster.Open(cat, taster.Options{StorageBudget: 1 << 28})
//	res, err := eng.Query(`SELECT region, SUM(amount) FROM sales
//	    JOIN customers ON sales.cust = customers.id
//	    GROUP BY region
//	    ERROR WITHIN 10% AT CONFIDENCE 95%`)
//	for i, row := range res.Rows {
//	    fmt.Println(row, "±", res.Intervals[i][0].HalfWidth)
//	}
package taster

import (
	"fmt"

	"github.com/tasterdb/taster/internal/baselines"
	"github.com/tasterdb/taster/internal/core"
	"github.com/tasterdb/taster/internal/obs"
	"github.com/tasterdb/taster/internal/sqlparser"
	"github.com/tasterdb/taster/internal/stats"
	"github.com/tasterdb/taster/internal/storage"
	"github.com/tasterdb/taster/internal/tuner"
)

// Catalog registers the base tables an engine can query.
type Catalog = storage.Catalog

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return storage.NewCatalog() }

// Schema, Col and Type describe table shapes.
type (
	// Schema is an ordered list of columns.
	Schema = storage.Schema
	// Col is one column: name (qualify as "table.column") and type.
	Col = storage.Col
	// Type is a column type.
	Type = storage.Type
)

// Column types.
const (
	Int64   = storage.Int64
	Float64 = storage.Float64
	String  = storage.String
	Bool    = storage.Bool
)

// TableBuilder accumulates rows for a new table.
type TableBuilder = storage.Builder

// NewTableBuilder starts a table. Column names should be qualified with the
// table name ("sales.amount") so SQL references bind unambiguously.
func NewTableBuilder(name string, schema Schema) *TableBuilder {
	return storage.NewBuilder(name, schema)
}

// Value is a dynamically typed scalar (result cells).
type Value = storage.Value

// Interval is an estimate with its confidence half-width.
type Interval = stats.Interval

// Accuracy is an error-at-confidence requirement.
type Accuracy = stats.AccuracySpec

// Options configures an engine.
type Options struct {
	// StorageBudget is the synopsis warehouse quota in bytes. The paper
	// expresses it as a fraction of the dataset; 0 means 25% of the
	// catalog's current size.
	StorageBudget int64
	// BufferSize is the in-memory synopsis buffer quota (0 → budget/4).
	BufferSize int64
	// Window is the tuner's initial sliding-window length (0 → 10); the
	// window adapts online unless FixedWindow is set.
	Window      int
	FixedWindow bool
	// DefaultAccuracy applies to queries without an ERROR WITHIN clause
	// (zero value → 10% at 95%).
	DefaultAccuracy Accuracy
	// Seed makes sampling reproducible.
	Seed uint64
	// SimulatedScale activates the simulated-cluster cost model that treats
	// the registered data as a miniature of a large cluster-resident
	// dataset (used by the experiments; optional for library users).
	SimulatedScale bool
	// Workers caps the morsel-driven executor's intra-query parallelism;
	// 0 means all CPUs. Results are byte-identical for any worker count.
	Workers int
	// PartitionRows tiles every registered table into fixed-size partitions
	// of at most this many rows. Each partition carries a zone map
	// (per-column min/max) that lets scans skip partitions a filter provably
	// rejects, and appends that land in one partition leave the synopses of
	// sibling partitions fully fresh. Query answers are bit-identical for
	// any partitioning — only cost changes. 0 keeps tables monolithic.
	PartitionRows int
	// MaxStaleness is the bounded-staleness policy for reuse under online
	// ingestion: the largest fraction of source rows a materialized synopsis
	// may have missed (via Ingest) while still answering queries. 0 (the
	// default) serves only fully fresh synopses — any append disqualifies
	// affected synopses until they are refreshed; a negative value disables
	// the bound (reuse regardless of staleness).
	MaxStaleness float64
	// WarehouseDir makes the synopsis warehouse disk-backed and the engine
	// restartable: synopses the tuner keeps are durably written there (and
	// dropped from RAM until reused), and Open recovers the previous
	// incarnation's warehouse, metadata and tuning window from the
	// directory's manifest — a warm restart answers its first queries from
	// recovered synopses instead of re-tasting the workload. Empty (the
	// default) keeps everything in memory and restarts cold.
	WarehouseDir string
	// SynchronousTuning runs the self-tuning round inline on every query
	// (tune → evict/promote → execute → admit, all on the calling
	// goroutine) instead of the default asynchronous pipeline. Sequential
	// runs then become byte-deterministic — the right setting for
	// reproducible experiments and demos. The default (false) keeps tuning
	// off the query critical path entirely: queries serve lock-free against
	// an atomically published tuning snapshot and a background service
	// applies retention decisions between queries; use Drain/Quiesce when a
	// test or benchmark needs the tuner caught up.
	SynchronousTuning bool
	// PlanCacheSize bounds the serving fast path's plan-set cache, in
	// entries: with the default asynchronous tuning, a repeated query
	// shape skips planning entirely (the cache key covers the canonical
	// query text, every bound table epoch and the published tuning
	// snapshot's identity, so a stale hit is impossible by construction).
	// 0 (the default) means 4096 entries; negative disables caching.
	// Ignored with SynchronousTuning.
	PlanCacheSize int
	// Metrics, when non-nil, receives engine-wide operational counters:
	// queries served, latency percentiles, plan-cache traffic, tuning
	// rounds, warehouse spills, pool recycling, executor dispatch. The
	// registry is write-only from the engine — enabling it never changes
	// an answer — and one registry may be shared across engines. Read it
	// with Engine.MetricsSnapshot or serve it live via obs/httpexport.
	// Nil (the default) disables the layer entirely.
	Metrics *Metrics
	// Trace enables per-query execution traces: Result.Trace carries an
	// EXPLAIN-ANALYZE-style tree of per-operator rows, batches, selection
	// density, materialized synopsis rows and stage durations. Traced and
	// untraced runs return byte-identical results.
	Trace bool
}

// Metrics is the engine-wide metrics registry (see Options.Metrics).
type Metrics = obs.Metrics

// MetricsSnapshot is a point-in-time copy of every engine metric.
type MetricsSnapshot = obs.MetricsSnapshot

// NewMetrics returns a ready metrics registry to pass as Options.Metrics.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// Engine is a Taster instance. It is safe for concurrent use: queries
// issued from many goroutines plan and execute in parallel (each one also
// parallelized internally by the morsel-driven executor). With the default
// asynchronous tuning, the query path acquires no engine-wide mutex — the
// tuner runs in the background and publishes its decisions as immutable
// snapshots the serving path reads atomically.
type Engine struct {
	inner *core.Engine
	cat   *Catalog
}

// Open creates an engine over the catalog. With Options.WarehouseDir it
// opens the persistent warehouse and replays any previous incarnation's
// manifest (warm restart); the error is non-nil only when that directory
// cannot be opened or its manifest is unreadable — individually corrupt
// synopsis files recover to a consistent cold state instead of failing.
func Open(cat *Catalog, opts Options) (*Engine, error) {
	if opts.StorageBudget <= 0 {
		opts.StorageBudget = cat.TotalBytes() / 4
		if opts.StorageBudget <= 0 {
			opts.StorageBudget = 64 << 20
		}
	}
	if opts.BufferSize <= 0 {
		opts.BufferSize = opts.StorageBudget / 4
	}
	model := storage.DefaultCostModel()
	if opts.SimulatedScale {
		var rows int64
		for _, n := range cat.Names() {
			if t, err := cat.Table(n); err == nil {
				rows += int64(t.NumRows())
			}
		}
		model = storage.ScaledCostModel(cat.TotalBytes(), rows)
	}
	tcfg := tuner.DefaultConfig()
	if opts.Window > 0 {
		tcfg.Window = opts.Window
	}
	tcfg.Adaptive = !opts.FixedWindow
	inner, err := core.Open(cat, core.Config{
		Mode:            core.ModeTaster,
		StorageBudget:   opts.StorageBudget,
		BufferSize:      opts.BufferSize,
		CostModel:       model,
		Tuner:           tcfg,
		DefaultAccuracy: opts.DefaultAccuracy,
		Seed:            opts.Seed,
		Workers:         opts.Workers,
		PartitionRows:   opts.PartitionRows,
		MaxStaleness:    opts.MaxStaleness,
		Synchronous:     opts.SynchronousTuning,
		PlanCacheSize:   opts.PlanCacheSize,
		WarehouseDir:    opts.WarehouseDir,
		Metrics:         opts.Metrics,
		Trace:           opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner, cat: cat}, nil
}

// MustOpen is Open for programs that treat a failed engine start as fatal
// (examples, demos); it panics on error.
func MustOpen(cat *Catalog, opts Options) *Engine {
	e, err := Open(cat, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// RecoveredSynopses reports how many materialized synopses the engine
// restored from Options.WarehouseDir at Open (0 for cold starts).
func (e *Engine) RecoveredSynopses() int { return e.inner.Recovered() }

// Result is a completed query.
type Result struct {
	// Columns names the result columns.
	Columns []string
	// Rows holds the result values (group-by columns, then aggregates).
	Rows [][]Value
	// Intervals holds, per row, the confidence interval of every aggregate
	// cell. Exact results have zero-width intervals.
	Intervals [][]Interval
	// Stats reports how the query was answered.
	Stats QueryStats
	// Trace is the rendered per-operator execution trace (empty unless
	// Options.Trace is set).
	Trace string
}

// QueryStats is per-query telemetry.
type QueryStats struct {
	// Plan describes the chosen plan ("exact", "reuse sample #3 ...", ...).
	Plan string
	// PlanTree is the full plan rendering.
	PlanTree string
	// ReusedSynopses / CreatedSynopses identify warehouse activity.
	ReusedSynopses  []uint64
	CreatedSynopses []uint64
	// SimulatedSeconds is the cluster-time estimate (only meaningful with
	// Options.SimulatedScale); WallSeconds is measured.
	SimulatedSeconds float64
	WallSeconds      float64
	// WarehouseBytes is the warehouse occupancy after the query.
	WarehouseBytes int64
}

// Query parses, plans, tunes and executes one SQL query. It may be called
// concurrently from any number of goroutines.
func (e *Engine) Query(sql string) (*Result, error) {
	q, err := sqlparser.Parse(sql, e.cat)
	if err != nil {
		return nil, err
	}
	res, err := e.inner.Execute(q)
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns:   res.Columns,
		Rows:      res.Rows,
		Intervals: res.Intervals,
		Trace:     res.Trace,
		Stats: QueryStats{
			Plan:             res.Report.PlanDesc,
			PlanTree:         res.Report.PlanTree,
			ReusedSynopses:   res.Report.UsedSynopses,
			CreatedSynopses:  res.Report.CreatedSynopses,
			SimulatedSeconds: res.Report.SimSeconds,
			WallSeconds:      res.Report.WallSeconds,
			WarehouseBytes:   res.Report.WarehouseBytes,
		},
	}, nil
}

// SetStorageBudget changes the warehouse quota at runtime; the tuner
// immediately re-evaluates the stored synopses (storage elasticity, §V).
func (e *Engine) SetStorageBudget(bytes int64) { e.inner.SetStorageBudget(bytes) }

// Drain blocks until the background tuner has processed every query served
// before the call — the barrier that makes an Execute→Drain loop
// deterministic. No-op with SynchronousTuning.
func (e *Engine) Drain() { e.inner.Drain() }

// Quiesce drains the background tuner and republishes its state from the
// current warehouse and metadata, so subsequent queries serve fully
// caught-up tuning decisions. No-op with SynchronousTuning.
func (e *Engine) Quiesce() { e.inner.Quiesce() }

// Close stops the background tuning service and, with WarehouseDir set,
// writes the final checkpoint (buffer payloads included) so the next Open
// warm-restarts from it. Pending observations are discarded — Drain first
// if they matter. Safe to call multiple times and on synchronous engines,
// so callers may always defer it.
func (e *Engine) Close() error { return e.inner.Close() }

// Ingest appends the builder's rows to a registered table (the builder must
// have been created with the table's schema). Running queries keep the
// snapshot they started on; subsequent queries see the new rows. Synopses
// built before the append become stale and are refreshed or disqualified
// according to Options.MaxStaleness. Returns the table's new epoch
// (version counter).
func (e *Engine) Ingest(table string, rows *TableBuilder) (uint64, error) {
	delta, err := rows.TryBuild(1)
	if err != nil {
		return 0, err
	}
	return e.inner.Ingest(table, delta)
}

// Hint pre-builds a pinned sample for a table offline (VerdictDB-style
// scramble + variational subsampling), so that the very first queries over
// it are already fast. stratCols declares the stratification the analysis
// needs; aggCols the columns that will be aggregated.
func (e *Engine) Hint(table string, stratCols, aggCols []string) error {
	_, err := baselines.ApplyHints(e.inner, []baselines.Hint{{
		Table: table, StratCols: stratCols, AggCols: aggCols,
	}}, storage.DefaultCostModel(), 1)
	return err
}

// MetricsSnapshot samples the metrics registry plus the engine-level gauges
// (warehouse occupancy, plan-cache residency, tuning snapshot version). Safe
// to call concurrently with queries and ingests. Without Options.Metrics the
// counters are all zero and only the gauges are live.
func (e *Engine) MetricsSnapshot() MetricsSnapshot { return e.inner.MetricsSnapshot() }

// WarehouseUsage returns (bufferBytes, warehouseBytes) currently occupied.
func (e *Engine) WarehouseUsage() (buffer, warehouse int64) {
	return e.inner.Warehouse().Usage()
}

// Synopses returns one human-readable line per synopsis the engine has
// materialized.
func (e *Engine) Synopses() []string {
	var out []string
	for _, entry := range e.inner.Store().Materialized() {
		d := entry.Desc
		out = append(out, fmt.Sprintf("%s [%s, %d bytes]", d.Label(), d.Location, d.SizeBytes()))
	}
	return out
}
