package taster_test

import (
	"fmt"
	"math"
	"os"

	taster "github.com/tasterdb/taster"
)

// ExampleOpen registers a table, opens an engine and runs a plain SQL
// aggregate. Queries this small run exactly, so the confidence intervals are
// zero-width.
func ExampleOpen() {
	cat := taster.NewCatalog()
	sales := taster.NewTableBuilder("sales", taster.Schema{
		{Name: "sales.region", Typ: taster.String},
		{Name: "sales.amount", Typ: taster.Float64},
	})
	for i := 0; i < 100; i++ {
		region := "east"
		if i%2 == 1 {
			region = "west"
		}
		sales.Str(0, region)
		sales.Float(1, float64(i))
	}
	cat.Register(sales.Build(2))

	eng := taster.MustOpen(cat, taster.Options{Seed: 42})
	defer eng.Close() // stops the background tuning service
	res, err := eng.Query(`SELECT region, COUNT(*) FROM sales GROUP BY region`)
	if err != nil {
		panic(err)
	}
	for i, row := range res.Rows {
		fmt.Printf("%s: %.0f (±%.0f)\n", row[0].S, row[1].F, res.Intervals[i][0].HalfWidth)
	}
	// Output:
	// east: 50 (±0)
	// west: 50 (±0)
}

// ExampleEngine_Query answers an approximate aggregate with an ERROR WITHIN
// clause: the engine injects a sampler, returns Horvitz-Thompson estimates
// with confidence intervals, and materializes the sample as a byproduct so
// repeated queries get faster. Engines are safe to query from many
// goroutines concurrently.
func ExampleEngine_Query() {
	cat := taster.NewCatalog()
	sales := taster.NewTableBuilder("sales", taster.Schema{
		{Name: "sales.grp", Typ: taster.Int64},
		{Name: "sales.amount", Typ: taster.Float64},
	})
	truth := make(map[int64]float64)
	for i := 0; i < 50000; i++ {
		g, amt := int64(i%4), float64(i%100)
		sales.Int(0, g)
		sales.Float(1, amt)
		truth[g] += amt
	}
	cat.Register(sales.Build(4))

	eng := taster.MustOpen(cat, taster.Options{Seed: 1})
	defer eng.Close() // stops the background tuning service
	res, err := eng.Query(`SELECT grp, SUM(amount) FROM sales GROUP BY grp
		ERROR WITHIN 10% AT CONFIDENCE 95%`)
	if err != nil {
		panic(err)
	}
	fmt.Println("groups:", len(res.Rows))

	allClose := true
	for i, row := range res.Rows {
		got, want := row[1].F, truth[row[0].I]
		slack := math.Max(4*res.Intervals[i][0].HalfWidth, 1e-9)
		if math.Abs(got-want) > slack {
			allClose = false
		}
	}
	fmt.Println("estimates within their intervals:", allClose)
	// Output:
	// groups: 4
	// estimates within their intervals: true
}

// ExampleOptions_warehouseDir makes the engine restartable: the first
// engine tastes the workload into a persistent warehouse directory, and a
// second engine opened over the same directory recovers the synopses and
// serves its very first query from them — a warm restart instead of a
// cold one.
func ExampleOptions_warehouseDir() {
	dir, err := os.MkdirTemp("", "taster-warehouse-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	mkCatalog := func() *taster.Catalog {
		cat := taster.NewCatalog()
		sales := taster.NewTableBuilder("sales", taster.Schema{
			{Name: "sales.grp", Typ: taster.Int64},
			{Name: "sales.amount", Typ: taster.Float64},
		})
		for i := 0; i < 50000; i++ {
			sales.Int(0, int64(i%4))
			sales.Float(1, float64(i%100))
		}
		cat.Register(sales.Build(4))
		return cat
	}
	const q = `SELECT grp, SUM(amount) FROM sales GROUP BY grp
		ERROR WITHIN 10% AT CONFIDENCE 95%`

	// First incarnation: tastes the workload, then shuts down cleanly.
	e1, err := taster.Open(mkCatalog(), taster.Options{
		Seed: 1, SynchronousTuning: true, WarehouseDir: dir,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e1.Query(q); err != nil {
			panic(err)
		}
	}
	if err := e1.Close(); err != nil { // final checkpoint
		panic(err)
	}

	// Second incarnation: recovers the warehouse and reuses immediately.
	e2, err := taster.Open(mkCatalog(), taster.Options{
		Seed: 1, SynchronousTuning: true, WarehouseDir: dir,
	})
	if err != nil {
		panic(err)
	}
	defer e2.Close()
	fmt.Println("recovered:", e2.RecoveredSynopses() > 0)
	res, err := e2.Query(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("first query reused a recovered synopsis:", len(res.Stats.ReusedSynopses) > 0)
	// Output:
	// recovered: true
	// first query reused a recovered synopsis: true
}

// ExampleOptions_partitionRows tiles the table into fixed-size partitions.
// Each partition carries a zone map, so a selective range predicate over a
// clustered column (here: time-ordered days) skips the partitions it
// provably rejects — less data scanned, same answer. Partitioning is
// invisible to results: the partitioned engine's rows are bit-identical to
// the monolithic engine's at the same seed.
func ExampleOptions_partitionRows() {
	mkCatalog := func() *taster.Catalog {
		cat := taster.NewCatalog()
		events := taster.NewTableBuilder("events", taster.Schema{
			{Name: "events.day", Typ: taster.Int64},
			{Name: "events.region", Typ: taster.Int64},
			{Name: "events.amount", Typ: taster.Float64},
		})
		for i := 0; i < 36500; i++ {
			events.Int(0, int64(i/100)) // append order ⇒ day-clustered
			events.Int(1, int64(i%4))
			events.Float(2, float64(i%50)+1)
		}
		cat.Register(events.Build(1))
		return cat
	}
	const q = `SELECT region, SUM(amount) FROM events
		WHERE day >= 100 AND day <= 120 GROUP BY region
		ERROR WITHIN 10% AT CONFIDENCE 95%`

	partitioned := taster.MustOpen(mkCatalog(), taster.Options{
		Seed: 42, PartitionRows: 2000, SynchronousTuning: true,
	})
	monolithic := taster.MustOpen(mkCatalog(), taster.Options{
		Seed: 42, SynchronousTuning: true,
	})
	a, err := partitioned.Query(q)
	if err != nil {
		panic(err)
	}
	b, err := monolithic.Query(q)
	if err != nil {
		panic(err)
	}
	same := len(a.Rows) == len(b.Rows)
	for i := 0; same && i < len(a.Rows); i++ {
		for c := range a.Rows[i] {
			same = same && a.Rows[i][c].Equal(b.Rows[i][c])
		}
	}
	fmt.Println("groups:", len(a.Rows), "layout-identical:", same)
	// Output:
	// groups: 4 layout-identical: true
}
