package taster_test

import (
	"math"
	"testing"

	taster "github.com/tasterdb/taster"
)

func demoCatalog() *taster.Catalog {
	cat := taster.NewCatalog()
	sales := taster.NewTableBuilder("sales", taster.Schema{
		{Name: "sales.cust", Typ: taster.Int64},
		{Name: "sales.amount", Typ: taster.Float64},
	})
	for i := 0; i < 20000; i++ {
		sales.Int(0, int64(i%8))
		sales.Float(1, float64(i%500))
	}
	cat.Register(sales.Build(4))

	customers := taster.NewTableBuilder("customers", taster.Schema{
		{Name: "customers.id", Typ: taster.Int64},
		{Name: "customers.region", Typ: taster.String},
	})
	for i := 0; i < 8; i++ {
		customers.AddRow(taster.Value{Typ: taster.Int64, I: int64(i)},
			taster.Value{Typ: taster.String, S: []string{"north", "south"}[i%2]})
	}
	cat.Register(customers.Build(1))
	return cat
}

func TestPublicAPIEndToEnd(t *testing.T) {
	eng := taster.MustOpen(demoCatalog(), taster.Options{Seed: 3, SimulatedScale: true})
	defer eng.Close()
	const sql = `SELECT region, SUM(amount), COUNT(*) FROM sales
		JOIN customers ON sales.cust = customers.id
		GROUP BY region ERROR WITHIN 10% AT CONFIDENCE 95%`

	var last *taster.Result
	for i := 0; i < 5; i++ {
		res, err := eng.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		// The tuner runs in the background by default; the barrier makes
		// the warmup (materialize → reuse) deterministic for the asserts.
		eng.Drain()
		if len(res.Rows) != 2 {
			t.Fatalf("run %d: groups = %d", i, len(res.Rows))
		}
		// True totals: each region has 10000 rows; SUM ≈ 10000·≈249.75.
		for r, row := range res.Rows {
			cnt := row[2].F
			if math.Abs(cnt-10000) > 3000 {
				t.Fatalf("count = %v", cnt)
			}
			if len(res.Intervals[r]) != 2 {
				t.Fatalf("intervals per row = %d", len(res.Intervals[r]))
			}
		}
		last = res
	}
	if last.Stats.Plan == "" || last.Stats.SimulatedSeconds <= 0 {
		t.Fatalf("stats = %+v", last.Stats)
	}
	// After several identical queries the engine must hold synopses.
	if buf, wh := eng.WarehouseUsage(); buf+wh == 0 {
		t.Fatal("no synopses materialized")
	}
	if len(eng.Synopses()) == 0 {
		t.Fatal("Synopses() empty")
	}
}

func TestPublicAPIIngest(t *testing.T) {
	eng := taster.MustOpen(demoCatalog(), taster.Options{Seed: 3, SimulatedScale: true})
	defer eng.Close()
	const sql = `SELECT region, SUM(amount) FROM sales
		JOIN customers ON sales.cust = customers.id
		GROUP BY region ERROR WITHIN 10% AT CONFIDENCE 95%`
	for i := 0; i < 5; i++ {
		if _, err := eng.Query(sql); err != nil {
			t.Fatal(err)
		}
		eng.Drain()
	}
	// Append 20000 rows of amount 1000 (outside the seed's 0..499 range):
	// each region gains 10000·1000.
	delta := taster.NewTableBuilder("sales", taster.Schema{
		{Name: "sales.cust", Typ: taster.Int64},
		{Name: "sales.amount", Typ: taster.Float64},
	})
	for i := 0; i < 20000; i++ {
		delta.Int(0, int64(i%8))
		delta.Float(1, 1000)
	}
	epoch, err := eng.Ingest("sales", delta)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d", epoch)
	}
	res, err := eng.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want := 10000*249.75 + 10000*1000 // per region: old mass + appended mass
	for _, row := range res.Rows {
		if rel := math.Abs(row[1].F-want) / want; rel > 0.12 {
			t.Fatalf("region %s after ingest: got %.0f want ≈%.0f (rel %.3f) — stale synopsis served?",
				row[0].S, row[1].F, want, rel)
		}
	}
	if _, err := eng.Ingest("nosuch", delta); err == nil {
		t.Fatal("ingest into unknown table accepted")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	eng := taster.MustOpen(demoCatalog(), taster.Options{})
	defer eng.Close()
	if _, err := eng.Query("SELECT nope FROM nowhere"); err == nil {
		t.Fatal("want error")
	}
	if err := eng.Hint("nowhere", nil, nil); err == nil {
		t.Fatal("want unknown table error")
	}
}

func TestPublicAPIHintAndElasticity(t *testing.T) {
	eng := taster.MustOpen(demoCatalog(), taster.Options{Seed: 5, SimulatedScale: true})
	defer eng.Close()
	if err := eng.Hint("sales", []string{"sales.cust"}, []string{"sales.amount"}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`SELECT cust, AVG(amount) FROM sales GROUP BY cust
		ERROR WITHIN 10% AT CONFIDENCE 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Shrinking the budget must not break subsequent queries.
	eng.SetStorageBudget(1)
	if _, err := eng.Query(`SELECT COUNT(*) FROM sales`); err != nil {
		t.Fatal(err)
	}
}
